//! The paper's own worked micro-worlds, reproduced fact by fact.
//!
//! These back the golden walkthrough (examples and integration tests):
//! the §4.1 navigation session (JOHN → PC#9-WAM → LEOPOLD,*,MOZART), the
//! §5.2 probing scenario, and the §6.1 `relation(...)` table.

use loosedb_engine::Database;

/// The music/employee world behind the §4.1 navigation tables.
///
/// Facts are chosen so that the three displays of the paper emerge:
///
/// * `(JOHN, *, *)` — classes PERSON/EMPLOYEE/PET-OWNER/MUSIC-LOVER;
///   LIKES, WORKS-FOR and FAVORITE-MUSIC columns.
/// * `(PC#9-WAM, *, *)` — classes CONCERTO/CLASSICAL/COMPOSITION;
///   COMPOSED-BY and PERFORMED-BY columns, and FAVORITE-OF (the inverse
///   of FAVORITE-MUSIC, inferred through the §3.4 inversion fact).
/// * `(LEOPOLD, *, MOZART)` — the direct FATHER-OF association and the
///   composed FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY path for JOHN.
pub fn music_world() -> Database {
    let mut db = Database::new();

    // John's classes (the paper's first column).
    db.add("JOHN", "isa", "PERSON");
    db.add("JOHN", "isa", "EMPLOYEE");
    db.add("JOHN", "isa", "PET-OWNER");
    db.add("JOHN", "isa", "MUSIC-LOVER");

    // LIKES column: CAT, FELIX, HEATHCLIFF, MOZART, MARY.
    db.add("JOHN", "LIKES", "CAT");
    db.add("JOHN", "LIKES", "FELIX");
    db.add("JOHN", "LIKES", "HEATHCLIFF");
    db.add("JOHN", "LIKES", "MOZART");
    db.add("JOHN", "LIKES", "MARY");

    // WORKS-FOR column: SHIPPING; BOSS column: PETER (kept as a
    // relationship, exactly as the paper's table shows).
    db.add("JOHN", "WORKS-FOR", "SHIPPING");
    db.add("JOHN", "BOSS", "PETER");

    // FAVORITE-MUSIC column: PC#9-WAM, PC#2-PIT, S#5-LVB.
    db.add("JOHN", "FAVORITE-MUSIC", "PC#9-WAM");
    db.add("JOHN", "FAVORITE-MUSIC", "PC#2-PIT");
    db.add("JOHN", "FAVORITE-MUSIC", "S#5-LVB");

    // The piano concerto: classes and associations (§4.1 second table).
    db.add("PC#9-WAM", "isa", "CONCERTO");
    db.add("PC#9-WAM", "isa", "CLASSICAL");
    db.add("PC#9-WAM", "isa", "COMPOSITION");
    db.add("PC#9-WAM", "COMPOSED-BY", "MOZART");
    db.add("PC#9-WAM", "PERFORMED-BY", "SERKIN");
    db.add("PC#9-WAM", "PERFORMED-BY", "BARENBOIM");

    // FAVORITE-OF is the inverse of FAVORITE-MUSIC: the paper's second
    // table shows JOHN under FAVORITE-OF, which inversion inference
    // produces from John's FAVORITE-MUSIC fact.
    db.add("FAVORITE-MUSIC", "inv", "FAVORITE-OF");

    // Leopold (§4.1 third table).
    db.add("LEOPOLD", "FATHER-OF", "MOZART");
    db.add("LEOPOLD", "FAVORITE-MUSIC", "PC#9-WAM");

    db
}

/// The §5.2 probing world: "the free things that all students love".
///
/// Taxonomy: FRESHMAN ≺ STUDENT, LOVE ≺ LIKE, FREE ≺ CHEAP; COSTS has no
/// parent (its minimal generalization is Δ). Data is arranged so the
/// query `(STUDENT, LOVE, ?z) & (?z, COSTS, FREE)` fails while the
/// FRESHMAN and CHEAP retractions succeed — the paper's menu.
pub fn probing_world() -> Database {
    let mut db = Database::new();
    db.add("FRESHMAN", "gen", "STUDENT");
    db.add("LOVE", "gen", "LIKE");
    db.add("FREE", "gen", "CHEAP");

    db.add("FRESHMAN", "LOVE", "MUSIC-DOWNLOAD");
    db.add("MUSIC-DOWNLOAD", "COSTS", "FREE");
    db.add("STUDENT", "LOVE", "COFFEE");
    db.add("COFFEE", "COSTS", "CHEAP");
    db
}

/// The §5.2 query over [`probing_world`].
pub const PROBING_QUERY: &str = "Q(?z) := (STUDENT, LOVE, ?z) & (?z, COSTS, FREE)";

/// The §6.1 employee world behind the `relation(...)` example table.
pub fn relation_world() -> Database {
    let mut db = Database::new();
    for (who, dept, salary) in
        [("JOHN", "SHIPPING", 26000i64), ("TOM", "ACCOUNTING", 27000), ("MARY", "RECEIVING", 25000)]
    {
        db.add(who, "isa", "EMPLOYEE");
        db.add(who, "WORKS-FOR", dept);
        db.add(who, "EARNS", salary);
        db.add(dept, "isa", "DEPARTMENT");
        db.add(salary, "isa", "SALARY");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use loosedb_browse::{navigate, NavigateOptions};
    use loosedb_store::Pattern;

    #[test]
    fn music_world_john_table() {
        let mut db = music_world();
        let john = db.lookup_symbol("JOHN").unwrap();
        let view = db.view().unwrap();
        let table =
            navigate(&view, Pattern::from_source(john), &NavigateOptions::default()).unwrap();
        for class in ["PERSON", "EMPLOYEE", "PET-OWNER", "MUSIC-LOVER"] {
            assert!(table.title_cells.contains(&class.to_string()), "{class}");
        }
        let headers: Vec<&str> = table.columns.iter().map(|(h, _)| h.as_str()).collect();
        for rel in ["LIKES", "WORKS-FOR", "FAVORITE-MUSIC", "BOSS"] {
            assert!(headers.contains(&rel), "{rel} missing from {headers:?}");
        }
    }

    #[test]
    fn music_world_pc9_table_shows_inverse() {
        let mut db = music_world();
        let pc9 = db.lookup_symbol("PC#9-WAM").unwrap();
        let view = db.view().unwrap();
        let table =
            navigate(&view, Pattern::from_source(pc9), &NavigateOptions::default()).unwrap();
        let headers: Vec<&str> = table.columns.iter().map(|(h, _)| h.as_str()).collect();
        assert!(headers.contains(&"COMPOSED-BY"));
        assert!(headers.contains(&"PERFORMED-BY"));
        // FAVORITE-OF inferred by inversion (§3.4): John and Leopold.
        assert!(headers.contains(&"FAVORITE-OF"), "{headers:?}");
        let fav_of = &table.columns.iter().find(|(h, _)| h == "FAVORITE-OF").unwrap().1;
        assert!(fav_of.contains(&"JOHN".to_string()));
        assert!(fav_of.contains(&"LEOPOLD".to_string()));
    }

    #[test]
    fn music_world_leopold_mozart_associations() {
        let mut db = music_world();
        let leopold = db.lookup_symbol("LEOPOLD").unwrap();
        let mozart = db.lookup_symbol("MOZART").unwrap();
        let view = db.view().unwrap();
        let table = navigate(
            &view,
            Pattern::new(Some(leopold), None, Some(mozart)),
            &NavigateOptions::default(),
        )
        .unwrap();
        let headers: Vec<&str> = table.columns.iter().map(|(h, _)| h.as_str()).collect();
        assert!(headers.contains(&"FATHER-OF"), "{headers:?}");
        assert!(headers.contains(&"FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY"), "{headers:?}");
    }

    #[test]
    fn probing_world_reproduces_menu() {
        let mut db = probing_world();
        let report =
            loosedb_browse::probe_text(PROBING_QUERY, &mut db, &Default::default()).unwrap();
        let menu = report.render_menu(db.store().interner());
        assert!(menu.contains("with FRESHMAN instead of STUDENT"), "{menu}");
        assert!(menu.contains("with CHEAP instead of FREE"), "{menu}");
    }

    #[test]
    fn relation_world_consistent() {
        let mut db = relation_world();
        assert!(db.is_consistent().unwrap());
        assert_eq!(db.base_len(), 15);
    }
}
