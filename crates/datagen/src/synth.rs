//! Parameterized synthetic workloads for tests and benchmarks.
//!
//! Every generator is deterministic in its seed, so benchmarks and
//! property tests are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use loosedb_engine::Database;
use loosedb_store::{EntityId, FactStore};

use crate::zipf::Zipf;

/// Configuration for [`random_facts`] and [`zipf_graph`].
#[derive(Clone, Copy, Debug)]
pub struct GraphConfig {
    /// Number of node entities.
    pub entities: usize,
    /// Number of relationship entities.
    pub relationships: usize,
    /// Number of facts to generate (duplicates are dropped, so the store
    /// may hold slightly fewer).
    pub facts: usize,
    /// Zipf exponent for degree skew (0 = uniform).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig { entities: 1000, relationships: 20, facts: 5000, skew: 1.1, seed: 42 }
    }
}

/// Generates a random fact graph with Zipf-skewed entity degrees.
///
/// Entities are named `N0 … Nk`, relationships `R0 … Rm`. Returns the
/// store together with the node and relationship ids, in rank order
/// (rank 0 is the highest-degree hub under positive skew).
pub fn zipf_graph(cfg: &GraphConfig) -> (FactStore, Vec<EntityId>, Vec<EntityId>) {
    let mut store = FactStore::new();
    let nodes: Vec<EntityId> = (0..cfg.entities).map(|i| store.entity(format!("N{i}"))).collect();
    let rels: Vec<EntityId> =
        (0..cfg.relationships).map(|i| store.entity(format!("R{i}"))).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let node_dist = Zipf::new(cfg.entities, cfg.skew);
    let rel_dist = Zipf::new(cfg.relationships, cfg.skew);
    for _ in 0..cfg.facts {
        let s = nodes[node_dist.sample(&mut rng)];
        let r = rels[rel_dist.sample(&mut rng)];
        let t = nodes[node_dist.sample(&mut rng)];
        store.insert(loosedb_store::Fact::new(s, r, t));
    }
    (store, nodes, rels)
}

/// Uniform random facts — [`zipf_graph`] with no skew.
pub fn random_facts(entities: usize, relationships: usize, facts: usize, seed: u64) -> FactStore {
    zipf_graph(&GraphConfig { entities, relationships, facts, skew: 0.0, seed }).0
}

/// Configuration for [`taxonomy`].
#[derive(Clone, Copy, Debug)]
pub struct TaxonomyConfig {
    /// Depth of the hierarchy (number of levels below the roots).
    pub depth: usize,
    /// Children per node.
    pub branching: usize,
    /// Probability of an extra second parent (makes a DAG, giving
    /// entities several minimal generalizations as §5.1 allows).
    pub dag_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TaxonomyConfig {
    fn default() -> Self {
        TaxonomyConfig { depth: 4, branching: 3, dag_probability: 0.1, seed: 42 }
    }
}

/// A generated generalization hierarchy.
pub struct GeneratedTaxonomy {
    /// The database holding the `gen` facts.
    pub db: Database,
    /// Entities per level; level 0 is the single root.
    pub levels: Vec<Vec<EntityId>>,
}

impl GeneratedTaxonomy {
    /// The leaf entities (deepest level).
    pub fn leaves(&self) -> &[EntityId] {
        self.levels.last().expect("at least the root")
    }

    /// The root entity.
    pub fn root(&self) -> EntityId {
        self.levels[0][0]
    }
}

/// Generates a rooted taxonomy of `gen` facts: a tree of the given depth
/// and branching, with optional extra cross edges forming a DAG.
pub fn taxonomy(cfg: &TaxonomyConfig) -> GeneratedTaxonomy {
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let root = db.entity("C-ROOT");
    let mut levels: Vec<Vec<EntityId>> = vec![vec![root]];
    for depth in 1..=cfg.depth {
        let mut level = Vec::new();
        let parents = levels[depth - 1].clone();
        for (pi, &parent) in parents.iter().enumerate() {
            for b in 0..cfg.branching {
                let child = db.entity(format!("C-{depth}-{pi}-{b}"));
                let child_name = db.display(child);
                let parent_name = db.display(parent);
                db.add(child_name.as_str(), "gen", parent_name.as_str());
                // Occasional second parent: a DAG node with two minimal
                // generalizations.
                if parents.len() > 1 && rng.gen_bool(cfg.dag_probability) {
                    let other = parents[rng.gen_range(0..parents.len())];
                    if other != parent {
                        let other_name = db.display(other);
                        db.add(child_name.as_str(), "gen", other_name.as_str());
                    }
                }
                level.push(child);
            }
        }
        levels.push(level);
    }
    GeneratedTaxonomy { db, levels }
}

/// A world with controllable synonym density (experiment E10).
///
/// `n` people each have one `EARNS` fact; a `fraction` of them get an
/// alias connected by a synonym fact, so recall through the alias depends
/// on synonym inference.
pub fn synonym_world(n: usize, fraction: f64, seed: u64) -> Database {
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..n {
        let name = format!("P{i}");
        db.add(name.as_str(), "EARNS", 1000 + i as i64);
        if rng.gen_bool(fraction) {
            db.add(name.as_str(), "syn", format!("ALIAS-{i}"));
        }
    }
    db
}

/// A world where every relationship has a declared inverse (experiment
/// E11): `n` teaching facts plus one inversion fact.
pub fn inversion_world(n: usize, seed: u64) -> Database {
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(seed);
    db.add("TEACHES", "inv", "TAUGHT-BY");
    for i in 0..n {
        let teacher = format!("T{}", rng.gen_range(0..(n / 4).max(1)));
        db.add(teacher.as_str(), "TEACHES", format!("COURSE-{i}"));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use loosedb_store::Pattern;

    #[test]
    fn zipf_graph_is_deterministic() {
        let cfg = GraphConfig::default();
        let (a, _, _) = zipf_graph(&cfg);
        let (b, _, _) = zipf_graph(&cfg);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
    }

    #[test]
    fn zipf_graph_has_hubs() {
        let cfg = GraphConfig { entities: 200, facts: 4000, skew: 1.2, ..Default::default() };
        let (store, nodes, _) = zipf_graph(&cfg);
        let hub_degree = store.count(Pattern::from_source(nodes[0]));
        let tail_degree = store.count(Pattern::from_source(nodes[199]));
        assert!(hub_degree > tail_degree * 3, "{hub_degree} vs {tail_degree}");
    }

    #[test]
    fn taxonomy_shape() {
        let t = taxonomy(&TaxonomyConfig { depth: 3, branching: 2, dag_probability: 0.0, seed: 1 });
        assert_eq!(t.levels.len(), 4);
        assert_eq!(t.levels[1].len(), 2);
        assert_eq!(t.levels[2].len(), 4);
        assert_eq!(t.leaves().len(), 8);
    }

    #[test]
    fn taxonomy_minimal_generalizations_work() {
        let mut t =
            taxonomy(&TaxonomyConfig { depth: 3, branching: 2, dag_probability: 0.0, seed: 1 });
        let leaf = t.leaves()[0];
        let parent_level = t.levels[2].clone();
        let closure = t.db.closure().unwrap();
        let tax = loosedb_engine::Taxonomy::new(closure);
        let gens = tax.minimal_generalizations(leaf);
        assert_eq!(gens.len(), 1);
        assert!(parent_level.contains(&gens[0]));
    }

    #[test]
    fn synonym_world_density() {
        let mut db = synonym_world(100, 0.5, 7);
        let syn = loosedb_store::special::SYN;
        let base_syn = db.store().count(Pattern::from_rel(syn));
        assert!(base_syn > 30 && base_syn < 70, "{base_syn}");
        assert!(db.is_consistent().unwrap());
    }

    #[test]
    fn inversion_world_closure_doubles_teaching_facts() {
        let mut db = inversion_world(50, 7);
        let taught_by = db.lookup_symbol("TAUGHT-BY").unwrap();
        let closure = db.closure().unwrap();
        assert_eq!(closure.count(Pattern::from_rel(taught_by)), 50);
    }
}
