//! Larger seeded domain worlds: a university (reified enrollments, §2.6)
//! and a company (integrity constraints, §2.5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use loosedb_engine::{Database, Rule};
use loosedb_store::special;

/// Configuration for [`university`].
#[derive(Clone, Copy, Debug)]
pub struct UniversityConfig {
    /// Number of students.
    pub students: usize,
    /// Number of courses.
    pub courses: usize,
    /// Number of instructors.
    pub instructors: usize,
    /// Enrollments per student (reified, §2.6).
    pub enrollments_per_student: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UniversityConfig {
    fn default() -> Self {
        UniversityConfig {
            students: 50,
            courses: 12,
            instructors: 6,
            enrollments_per_student: 3,
            seed: 42,
        }
    }
}

const GRADES: [&str; 5] = ["A", "B", "C", "D", "F"];

/// Builds a university world:
///
/// * taxonomy `FRESHMAN/SOPHOMORE/JUNIOR/SENIOR ≺ STUDENT ≺ PERSON`,
///   `INSTRUCTOR ≺ PERSON`, `GRADUATE-OF ≺ ATTENDED` (the §5 probing
///   example's generalizations);
/// * inversion `TEACHES ⁺ TAUGHT-BY` (§3.4);
/// * complex enrollment facts broken into atomic facts through reified
///   `E<i>` entities with `ENROLL-STUDENT` / `ENROLL-COURSE` /
///   `ENROLL-GRADE`, exactly as §2.6 prescribes;
/// * class-level facts (`STUDENT ATTENDS COURSE`) that flow to instances
///   by membership inference.
pub fn university(cfg: &UniversityConfig) -> Database {
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Taxonomy.
    for year in ["FRESHMAN", "SOPHOMORE", "JUNIOR", "SENIOR"] {
        db.add(year, "gen", "STUDENT");
    }
    db.add("STUDENT", "gen", "PERSON");
    db.add("INSTRUCTOR", "gen", "PERSON");
    db.add("GRADUATE-OF", "gen", "ATTENDED");
    db.add("TEACHES", "inv", "TAUGHT-BY");

    // Courses and instructors.
    for c in 0..cfg.courses {
        db.add(format!("CRS-{c}"), "isa", "COURSE");
        let teacher = format!("INST-{}", c % cfg.instructors.max(1));
        db.add(teacher.as_str(), "TEACHES", format!("CRS-{c}"));
    }
    for i in 0..cfg.instructors {
        db.add(format!("INST-{i}"), "isa", "INSTRUCTOR");
    }

    // Students with reified enrollments.
    let years = ["FRESHMAN", "SOPHOMORE", "JUNIOR", "SENIOR"];
    let mut enrollment = 0usize;
    for s in 0..cfg.students {
        let student = format!("STU-{s}");
        db.add(student.as_str(), "isa", years[rng.gen_range(0..years.len())]);
        for _ in 0..cfg.enrollments_per_student {
            let course = format!("CRS-{}", rng.gen_range(0..cfg.courses.max(1)));
            let grade = GRADES[rng.gen_range(0..GRADES.len())];
            let e = format!("E{enrollment}");
            enrollment += 1;
            db.add(e.as_str(), "isa", "ENROLLMENT");
            db.add(e.as_str(), "ENROLL-STUDENT", student.as_str());
            db.add(e.as_str(), "ENROLL-COURSE", course.as_str());
            db.add(e.as_str(), "ENROLL-GRADE", grade);
        }
        if rng.gen_bool(0.3) {
            db.add(student.as_str(), "GRADUATE-OF", "USC");
        }
    }
    for g in GRADES {
        db.add(g, "isa", "GRADE");
    }

    db
}

/// Configuration for [`company`].
#[derive(Clone, Copy, Debug)]
pub struct CompanyConfig {
    /// Number of employees.
    pub employees: usize,
    /// Number of departments.
    pub departments: usize,
    /// Include the §2.5 integrity constraints.
    pub with_constraints: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CompanyConfig {
    fn default() -> Self {
        CompanyConfig { employees: 60, departments: 6, with_constraints: true, seed: 42 }
    }
}

/// Builds a company world with the paper's §2.5 integrity machinery:
///
/// * taxonomy `MANAGER ≺ EMPLOYEE ≺ PERSON`, `SALARY ≺ COMPENSATION`,
///   `WORKS-FOR ≺ IS-PAID-BY` (the §3.1 examples);
/// * numeric `EARNS` and `AGE-OF` facts;
/// * the constraint *age is positive* (`(x, ∈, AGE) ⇒ (x, >, 0)`);
/// * the contradiction fact `(LOVES, ⊥, HATES)`;
/// * consistent data, so the returned database validates cleanly —
///   benches and tests then inject violations deliberately.
pub fn company(cfg: &CompanyConfig) -> Database {
    let mut db = Database::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    db.add("MANAGER", "gen", "EMPLOYEE");
    db.add("EMPLOYEE", "gen", "PERSON");
    db.add("SALARY-PILE", "gen", "COMPENSATION");
    db.add("WORKS-FOR", "gen", "IS-PAID-BY");
    db.add("LOVES", "contra", "HATES");
    db.add("EMPLOYEE", "EARNS", "SALARY-PILE");

    for d in 0..cfg.departments {
        db.add(format!("DEPT-{d}"), "isa", "DEPARTMENT");
    }

    for e in 0..cfg.employees {
        let name = format!("EMP-{e}");
        let is_manager = e % 10 == 0;
        let class = if is_manager { "MANAGER" } else { "EMPLOYEE" };
        db.add(name.as_str(), "isa", class);
        db.add(name.as_str(), "WORKS-FOR", format!("DEPT-{}", e % cfg.departments.max(1)));
        // Managers out-earn their reports, so the §2.5 dominance
        // constraint holds on the generated data.
        let salary = if is_manager {
            80_000 + rng.gen_range(0..20) as i64 * 1000
        } else {
            20_000 + rng.gen_range(0..40) as i64 * 1000
        };
        db.add(name.as_str(), "EARNS", salary);
        db.add(salary, "isa", "SALARY-AMOUNT");
        let age = 21 + rng.gen_range(0..45) as i64;
        db.add(age, "isa", "AGE");
        db.add(name.as_str(), "AGE-OF", age);
        if !is_manager {
            db.add(name.as_str(), "MANAGER-IS", format!("EMP-{}", (e / 10) * 10));
        }
    }

    if cfg.with_constraints {
        let age_class = db.entity("AGE");
        let zero = db.entity(0i64);
        let mut b = Rule::builder("age-positive");
        let x = b.var("x");
        db.add_rule(
            b.constraint()
                .when(x, special::ISA, age_class)
                .then(x, special::GT, zero)
                .build()
                .expect("valid rule"),
        )
        .expect("unique name");

        // The paper's §2.5 second constraint, guards included: the
        // membership atoms on u and v are essential — without them the
        // rule would also match class-level EARNS facts lifted into the
        // closure by membership inference.
        let earns = db.entity("EARNS");
        let manager_is = db.entity("MANAGER-IS");
        let salary_amount = db.entity("SALARY-AMOUNT");
        let mut b = Rule::builder("manager-earns-more");
        let (x, y, u, v) = (b.var("x"), b.var("y"), b.var("u"), b.var("v"));
        db.add_rule(
            b.constraint()
                .when(x, manager_is, y)
                .when(x, earns, u)
                .when(y, earns, v)
                .when(u, special::ISA, salary_amount)
                .when(v, special::ISA, salary_amount)
                .then(v, special::GE, u)
                .build()
                .expect("valid rule"),
        )
        .expect("unique name");
    }

    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use loosedb_store::Pattern;

    #[test]
    fn university_is_deterministic_and_consistent() {
        let cfg = UniversityConfig::default();
        let mut a = university(&cfg);
        let b = university(&cfg);
        assert_eq!(a.base_len(), b.base_len());
        assert!(a.is_consistent().unwrap());
    }

    #[test]
    fn university_reified_enrollments_query() {
        let mut db = university(&UniversityConfig {
            students: 10,
            enrollments_per_student: 2,
            ..Default::default()
        });
        // Every enrollment entity has all three attributes.
        let q = loosedb_query::parse("Q(?e) := (?e, isa, ENROLLMENT)", db.store_interner_mut())
            .unwrap();
        let view = db.view().unwrap();
        let enrollments = loosedb_query::eval(&q, &view).unwrap();
        assert_eq!(enrollments.len(), 20);
        drop(view);
        // The unconstrained join is larger than 20: membership inference
        // (M2) lifts every enrollment target to its classes, so tuples
        // like (E0, FRESHMAN, CRS-1, GRADE-class) are genuine closure
        // answers. Constraining each variable to its class recovers
        // exactly the base enrollments.
        let q = loosedb_query::parse(
            "Q(?e, ?s, ?c, ?g) := (?e, ENROLL-STUDENT, ?s) & (?e, ENROLL-COURSE, ?c) \
             & (?e, ENROLL-GRADE, ?g) & (?s, isa, STUDENT) & (?c, isa, COURSE) \
             & (?g, isa, GRADE)",
            db.store_interner_mut(),
        )
        .unwrap();
        let view = db.view().unwrap();
        let full = loosedb_query::eval(&q, &view).unwrap();
        assert_eq!(full.len(), 20);
    }

    #[test]
    fn university_membership_inference() {
        // Students are persons: (STU-0, ∈, FRESHMAN-or-other) ∧ year ≺
        // STUDENT ≺ PERSON ⇒ (STU-0, ∈, PERSON).
        let mut db = university(&UniversityConfig { students: 5, ..Default::default() });
        let stu0 = db.lookup_symbol("STU-0").unwrap();
        let person = db.lookup_symbol("PERSON").unwrap();
        let closure = db.closure().unwrap();
        assert!(closure.contains(&loosedb_store::Fact::new(stu0, special::ISA, person)));
    }

    #[test]
    fn university_inversion() {
        let mut db = university(&UniversityConfig::default());
        let taught_by = db.lookup_symbol("TAUGHT-BY").unwrap();
        let closure = db.closure().unwrap();
        assert!(closure.count(Pattern::from_rel(taught_by)) >= 12);
    }

    #[test]
    fn company_consistent_and_guarded() {
        let mut db = company(&CompanyConfig::default());
        assert!(db.is_consistent().unwrap());
        // A negative age is rejected transactionally.
        let err = db.try_add(-3i64, "isa", "AGE").unwrap_err();
        assert!(matches!(err, loosedb_engine::TransactionError::Integrity(_)));
        // A love/hate contradiction is rejected.
        db.add("EMP-1", "LOVES", "EMP-2");
        let err = db.try_add("EMP-1", "HATES", "EMP-2").unwrap_err();
        assert!(matches!(err, loosedb_engine::TransactionError::Integrity(_)));
    }

    #[test]
    fn company_generalization_chain() {
        // WORKS-FOR ≺ IS-PAID-BY: everyone is paid by their department.
        let mut db = company(&CompanyConfig::default());
        let emp0 = db.lookup_symbol("EMP-0").unwrap();
        let paid_by = db.lookup_symbol("IS-PAID-BY").unwrap();
        let dept0 = db.lookup_symbol("DEPT-0").unwrap();
        let closure = db.closure().unwrap();
        assert!(closure.contains(&loosedb_store::Fact::new(emp0, paid_by, dept0)));
    }
}
