//! A small Zipf sampler for skewed-degree workloads.
//!
//! Navigation benchmarks (E4) need entities whose fact degrees follow the
//! heavy-tailed distributions of real associative data. This sampler
//! draws ranks `1..=n` with probability proportional to `1/rank^s` by
//! binary search over the precomputed cumulative weights.

use rand::Rng;

/// A precomputed Zipf distribution over ranks `1..=n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite and non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if there are no ranks (never: construction requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples a rank in `0..n` (zero-based).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let zipf = Zipf::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(zipf.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn skew_prefers_low_ranks() {
        let zipf = Zipf::new(1000, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[100] && counts[0] > counts[999]);
        // Rank 0 should take a noticeable share under s=1.2.
        assert!(counts[0] > 20_000 / 50);
    }

    #[test]
    fn uniform_when_s_zero() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 1000, "{counts:?}");
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let zipf = Zipf::new(50, 1.0);
        let a: Vec<usize> =
            (0..100).scan(StdRng::seed_from_u64(42), |rng, _| Some(zipf.sample(rng))).collect();
        let b: Vec<usize> =
            (0..100).scan(StdRng::seed_from_u64(42), |rng, _| Some(zipf.sample(rng))).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }
}
