//! # loosedb-datagen
//!
//! Deterministic world and workload generators for loosedb tests,
//! examples and benchmarks:
//!
//! * [`paper`] — the paper's own worked micro-worlds (§4.1 navigation,
//!   §5.2 probing, §6.1 relation table), reproduced fact by fact.
//! * [`worlds`] — seeded university (reified enrollments) and company
//!   (integrity constraints) domains.
//! * [`synth`] — parameterized synthetic workloads: Zipf-skewed fact
//!   graphs, random taxonomies, synonym/inversion density worlds.
//! * [`zipf`] — the Zipf rank sampler behind the skewed generators.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod paper;
pub mod synth;
pub mod worlds;
pub mod zipf;

pub use paper::{music_world, probing_world, relation_world, PROBING_QUERY};
pub use synth::{
    inversion_world, random_facts, synonym_world, taxonomy, zipf_graph, GeneratedTaxonomy,
    GraphConfig, TaxonomyConfig,
};
pub use worlds::{company, university, CompanyConfig, UniversityConfig};
pub use zipf::Zipf;
