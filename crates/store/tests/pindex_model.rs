//! Reference-model properties of the persistent ordered index: under any
//! random interleaving of inserts, removals and range scans, [`PSet`] and
//! [`PMap`] must agree exactly with `BTreeSet`/`BTreeMap` — and cloning
//! must be a true snapshot: past generations never observe later writes,
//! while unchanged subtrees stay pointer-equal (structural sharing).

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use loosedb_store::{PMap, PSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every operation's return value, the length, full iteration order
    /// and all four range-bound shapes agree with the `BTreeSet` model.
    #[test]
    fn pset_matches_btreeset_model(
        ops in prop::collection::vec((0u8..4, 0u16..600), 1..200),
        lo in 0u16..600,
        hi in 0u16..600,
    ) {
        let mut pset = PSet::new();
        let mut model = BTreeSet::new();
        for &(op, k) in &ops {
            if op < 3 {
                prop_assert_eq!(pset.insert(k), model.insert(k));
            } else {
                prop_assert_eq!(pset.remove(&k), model.remove(&k));
            }
            prop_assert_eq!(pset.contains(&k), model.contains(&k));
            prop_assert_eq!(pset.len(), model.len());
        }
        prop_assert!(pset.iter().eq(model.iter()));
        let (a, b) = (lo.min(hi), lo.max(hi));
        prop_assert!(pset.range(a..b).eq(model.range(a..b)));
        prop_assert!(pset.range(a..=b).eq(model.range(a..=b)));
        prop_assert!(pset.range(..b).eq(model.range(..b)));
        prop_assert!(pset.range(a..).eq(model.range(a..)));
    }

    /// Insert-with-replacement, lookup and removal return values agree
    /// with the `BTreeMap` model, as does the final entry sequence.
    #[test]
    fn pmap_matches_btreemap_model(
        ops in prop::collection::vec((0u8..4, 0u16..300, 0u32..1000), 1..200),
    ) {
        let mut pmap = PMap::new();
        let mut model = BTreeMap::new();
        for &(op, k, v) in &ops {
            if op < 3 {
                prop_assert_eq!(pmap.insert(k, v), model.insert(k, v));
            } else {
                prop_assert_eq!(pmap.remove(&k), model.remove(&k));
            }
            prop_assert_eq!(pmap.get(&k), model.get(&k));
        }
        prop_assert_eq!(pmap.len(), model.len());
        prop_assert!(pmap.iter().eq(model.iter()));
    }

    /// Cloning freezes a generation: mutations on the derived tree are
    /// invisible to the snapshot, allocate only O(muts · log N) fresh
    /// nodes, and leave every untouched subtree pointer-equal.
    #[test]
    fn snapshots_are_immutable_and_share_structure(
        keys in prop::collection::vec(0u16..2000, 32..400),
        muts in prop::collection::vec((0u8..2, 0u16..2000), 1..8),
    ) {
        let mut derived = PSet::new();
        for &k in &keys {
            derived.insert(k);
        }
        let snapshot = derived.clone();
        let frozen: Vec<u16> = snapshot.iter().copied().collect();

        let mut model: BTreeSet<u16> = frozen.iter().copied().collect();
        for &(op, k) in &muts {
            if op == 0 {
                prop_assert_eq!(derived.insert(k), model.insert(k));
            } else {
                prop_assert_eq!(derived.remove(&k), model.remove(&k));
            }
        }
        prop_assert!(derived.iter().eq(model.iter()));
        prop_assert!(
            snapshot.iter().copied().eq(frozen.iter().copied()),
            "snapshot observed a later write"
        );

        // Path-copying touches at most the root-to-leaf path (plus a
        // sibling during rebalancing) per mutation; with at most 8
        // mutations on a tree of height <= 4 here, 16 fresh nodes per
        // mutation is a generous ceiling that still proves sharing.
        let mut before = BTreeSet::new();
        snapshot.for_each_node_addr(&mut |p| {
            before.insert(p);
        });
        let mut fresh = 0usize;
        let mut shared = 0usize;
        derived.for_each_node_addr(&mut |p| {
            if before.contains(&p) {
                shared += 1;
            } else {
                fresh += 1;
            }
        });
        prop_assert!(
            fresh <= muts.len() * 16,
            "expected O(muts * log N) fresh nodes, got {} for {} mutations",
            fresh,
            muts.len()
        );
        prop_assert!(
            shared + muts.len() * 16 >= before.len(),
            "derived tree shares too little: {} of {} nodes",
            shared,
            before.len()
        );
    }
}
