//! Corruption-robustness properties of the persisted formats: decoding
//! arbitrarily damaged snapshot and log images must return `Err` (or a
//! self-consistent value where the format has no checksum) — and must
//! never panic or allocate absurd amounts from attacker-controlled
//! length prefixes.

use proptest::prelude::*;

use loosedb_store::{log, snapshot, EntityValue, FactLog, FactStore};

/// A store with symbols, ints, floats and a path entity — every codec
/// tag appears in its snapshot image.
fn sample_store(facts: &[(u8, u8, u8)]) -> FactStore {
    let mut store = FactStore::new();
    store.add("JOHN", "EARNS", 25000i64);
    store.add("GPA", "IS", 2.5);
    for &(s, r, t) in facts {
        store.add(format!("N{s}"), format!("R{r}"), format!("N{t}"));
    }
    let fav = store.entity("FAVORITE-MUSIC");
    let comp = store.entity("COMPOSED-BY");
    let path = store.entity(EntityValue::Path(vec![fav, comp].into()));
    let john = store.lookup_symbol("JOHN").unwrap();
    let mozart = store.entity("MOZART");
    store.insert(loosedb_store::Fact::new(john, path, mozart));
    store
}

fn sample_log(facts: &[(u8, u8, u8)]) -> FactLog {
    let mut wal = FactLog::new();
    wal.insert("JOHN", "EARNS", 25000i64);
    wal.insert("GPA", "IS", 2.5);
    for &(s, r, t) in facts {
        wal.insert(format!("N{s}"), format!("R{r}"), format!("N{t}"));
        if s % 3 == 0 {
            wal.remove(format!("N{s}"), format!("R{r}"), format!("N{t}"));
        }
    }
    wal
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any single flipped bit in a log image fails the frame checksum:
    /// strict decode errors, and lenient recovery stops cleanly at the
    /// damaged frame with a valid-prefix report.
    #[test]
    fn log_bit_flip_always_errors(
        facts in prop::collection::vec((0u8..20, 0u8..6, 0u8..20), 1..12),
        pos in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let wal = sample_log(&facts);
        let mut data = wal.bytes().to_vec();
        let idx = pos % data.len();
        data[idx] ^= 1 << bit;

        prop_assert!(log::decode(&data).is_err(), "flip at byte {idx}");

        let mut store = FactStore::new();
        let report = log::recover(&data, &mut store);
        prop_assert!(report.damaged);
        prop_assert!(report.applied < wal.len());
        prop_assert!(report.valid_bytes <= idx);
        // The valid prefix really is decodable on its own.
        prop_assert!(log::decode(&data[..report.valid_bytes]).is_ok());
    }

    /// Truncating a log is only acceptable at an exact frame boundary
    /// (a shorter but intact log); any mid-frame cut is a strict-decode
    /// error, and lenient recovery agrees in both cases.
    #[test]
    fn log_truncation_errors_off_frame_boundaries(
        facts in prop::collection::vec((0u8..20, 0u8..6, 0u8..20), 1..12),
        pos in 0usize..10_000,
    ) {
        let wal = sample_log(&facts);
        let data = wal.bytes().to_vec();
        let cut = pos % data.len();
        let mut store = FactStore::new();
        let report = log::recover(&data[..cut], &mut store);
        prop_assert!(report.applied < wal.len());
        // Strict decode succeeds iff the cut hit a frame boundary.
        prop_assert_eq!(log::decode(&data[..cut]).is_ok(), !report.damaged);
        if report.damaged {
            prop_assert!(report.valid_bytes < cut);
        } else {
            prop_assert_eq!(report.valid_bytes, cut);
        }
    }

    /// Snapshot images carry no checksum, so a flipped byte may still
    /// decode — but it must never panic, and whatever decodes is a
    /// well-formed store.
    #[test]
    fn snapshot_bit_flip_never_panics(
        facts in prop::collection::vec((0u8..20, 0u8..6, 0u8..20), 0..12),
        pos in 0usize..10_000,
        bit in 0u8..8,
    ) {
        let store = sample_store(&facts);
        let mut data = snapshot::encode(&store).to_vec();
        let idx = pos % data.len();
        data[idx] ^= 1 << bit;
        if let Ok(decoded) = snapshot::decode(bytes::Bytes::from(data)) {
            // Well-formed: every fact's ids resolve.
            for f in decoded.iter() {
                let _ = decoded.display_fact(&f);
            }
        }
    }

    /// Any strict prefix of a snapshot image is an error, not a panic.
    #[test]
    fn snapshot_truncation_always_errors(
        facts in prop::collection::vec((0u8..20, 0u8..6, 0u8..20), 0..12),
        pos in 0usize..10_000,
    ) {
        let store = sample_store(&facts);
        let data = snapshot::encode(&store).to_vec();
        let cut = pos % data.len();
        prop_assert!(snapshot::decode(bytes::Bytes::from(data[..cut].to_vec())).is_err());
    }
}
