//! # loosedb-store
//!
//! Storage substrate for a *loosely structured database* (Motro, SIGMOD
//! 1984): a completely schema-free set of facts — named pairs
//! `(source, relationship, target)` of entities — with indexed pattern
//! retrieval and binary persistence.
//!
//! This crate knows nothing about inference, integrity, queries or
//! browsing; those live in `loosedb-engine`, `loosedb-query` and
//! `loosedb-browse`. What it provides:
//!
//! * [`EntityValue`] / [`EntityId`] / [`Interner`] — the universe `E` of
//!   entities (symbols, numbers and composed relationship paths), interned
//!   to dense ids.
//! * [`special`] — the paper's special entities (`≺ ∈ ≈ ⁺ ⊥ Δ ∇` and the
//!   mathematical comparators) at reserved ids.
//! * [`Fact`] / [`Pattern`] — facts and storage-level match patterns.
//! * [`FactStore`] — the store itself, with three rotated ordered indexes
//!   answering every pattern shape in one range scan, plus an unindexed
//!   scan baseline for the organization-vs-retrieval trade-off experiment.
//! * [`pindex`] — the persistent (structurally shared) B-tree those
//!   indexes are built on: `clone` is O(1), updates copy O(log N) nodes,
//!   which is what makes snapshot publishing O(delta).
//! * [`snapshot`] and [`log`] — point-in-time images and checksummed,
//!   crash-recoverable operation logs.
//! * [`io`] — atomic file replacement, CRC32, and a pluggable storage
//!   layer with fault injection for crash testing.
//! * [`ship`] — the replication feed: checksummed manifest and cursor
//!   codecs plus a tailing [`FrameStream`] over a leader's WAL segments.
//!
//! ```
//! use loosedb_store::{FactStore, Pattern};
//!
//! let mut store = FactStore::new();
//! store.add("JOHN", "EARNS", 25000i64);
//! store.add("JOHN", "isa", "EMPLOYEE");
//!
//! let john = store.lookup_symbol("JOHN").unwrap();
//! let about_john: Vec<_> = store.matching(Pattern::from_source(john)).collect();
//! assert_eq!(about_john.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod fact;
pub mod index;
pub mod interner;
pub mod io;
pub mod log;
pub mod pindex;
pub mod ship;
pub mod snapshot;
pub mod special;
pub mod store;
pub mod text;
pub mod value;

pub use codec::CodecError;
pub use fact::{Fact, Pattern, Position, Shape};
pub use index::TripleIndex;
pub use interner::Interner;
pub use io::{atomic_write, crc32, FaultIo, MemIo, RealIo, StorageIo};
pub use log::{FactLog, LogOp};
pub use pindex::{PMap, PSet};
pub use ship::{FrameStream, Manifest, ShipBatch, ShipCursor, ShipError};
pub use store::{FactStore, StoreStats};
pub use text::TextError;
pub use value::{num_cmp, EntityId, EntityValue};
