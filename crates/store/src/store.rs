//! The fact store: interner + triple indexes + modification tracking.
//!
//! [`FactStore`] is the storage substrate for a loosely structured
//! database: a completely schema-free set of facts over interned entities.
//! Anything goes, exactly as §2.6 requires — the same pair of entities may
//! be related through several relationships, many-to-many relationships are
//! ordinary, and replicated or mutually inconsistent facts are accepted at
//! this layer (consistency is the engine's job, via contradiction facts).

use crate::fact::{Fact, Pattern};
use crate::index::{MatchIter, TripleIndex};
use crate::interner::Interner;
use crate::special;
use crate::value::{EntityId, EntityValue};

/// A schema-free store of facts with indexed pattern retrieval.
#[derive(Clone, Debug)]
pub struct FactStore {
    interner: Interner,
    index: TripleIndex,
    epoch: u64,
}

impl FactStore {
    /// Creates an empty store (special entities pre-interned).
    pub fn new() -> Self {
        FactStore { interner: Interner::new(), index: TripleIndex::new(), epoch: 0 }
    }

    // ------------------------------------------------------------------
    // Entities
    // ------------------------------------------------------------------

    /// Interns an entity value, returning its id.
    pub fn entity(&mut self, value: impl Into<EntityValue>) -> EntityId {
        self.interner.intern(value)
    }

    /// Looks up an entity id without interning.
    pub fn lookup(&self, value: &EntityValue) -> Option<EntityId> {
        self.interner.lookup(value)
    }

    /// Looks up a symbol by name without interning.
    pub fn lookup_symbol(&self, name: &str) -> Option<EntityId> {
        self.interner.lookup_symbol(name)
    }

    /// Resolves an id to its value.
    pub fn value(&self, id: EntityId) -> &EntityValue {
        self.interner.resolve(id)
    }

    /// Renders an entity for display (paths expand to dotted form).
    pub fn display(&self, id: EntityId) -> String {
        self.interner.display(id)
    }

    /// Renders a fact for display: `(JOHN, EARNS, 25000)`.
    pub fn display_fact(&self, f: &Fact) -> String {
        format!("({}, {}, {})", self.display(f.s), self.display(f.r), self.display(f.t))
    }

    /// Read access to the interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Mutable access to the interner (interning only; entities are never
    /// removed).
    pub fn interner_mut(&mut self) -> &mut Interner {
        &mut self.interner
    }

    /// Number of interned entities, including the reserved specials.
    pub fn entity_count(&self) -> usize {
        self.interner.len()
    }

    /// True if `e` occurs in at least one stored fact.
    pub fn is_used(&self, e: EntityId) -> bool {
        self.index.mentions(e)
    }

    // ------------------------------------------------------------------
    // Facts
    // ------------------------------------------------------------------

    /// Inserts a fact by id. Returns true if it was not already present.
    ///
    /// # Panics
    /// Panics (debug only) if any id was not interned by this store.
    pub fn insert(&mut self, f: Fact) -> bool {
        debug_assert!(
            self.interner.contains_id(f.s)
                && self.interner.contains_id(f.r)
                && self.interner.contains_id(f.t),
            "fact {f} refers to unknown entities"
        );
        let fresh = self.index.insert(f);
        if fresh {
            self.epoch += 1;
        }
        fresh
    }

    /// Interns three values and inserts the resulting fact; returns it.
    ///
    /// This is the primary construction API: facts are described "one by
    /// one" (§2), e.g. `store.add("JOHN", "EARNS", 25000)`.
    pub fn add(
        &mut self,
        s: impl Into<EntityValue>,
        r: impl Into<EntityValue>,
        t: impl Into<EntityValue>,
    ) -> Fact {
        let f = Fact::new(self.entity(s), self.entity(r), self.entity(t));
        self.insert(f);
        f
    }

    /// Removes a fact. Returns true if it was present.
    pub fn remove(&mut self, f: &Fact) -> bool {
        let removed = self.index.remove(f);
        if removed {
            self.epoch += 1;
        }
        removed
    }

    /// Exact membership test.
    pub fn contains(&self, f: &Fact) -> bool {
        self.index.contains(f)
    }

    /// Number of stored facts.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no facts are stored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Removes every fact (entities remain interned).
    pub fn clear(&mut self) {
        if !self.index.is_empty() {
            self.epoch += 1;
        }
        self.index.clear();
    }

    // ------------------------------------------------------------------
    // Retrieval
    // ------------------------------------------------------------------

    /// All facts matching a pattern, via the index (one range scan).
    pub fn matching(&self, pattern: Pattern) -> MatchIter<'_> {
        self.index.matching(pattern)
    }

    /// All facts matching a pattern, via a full scan.
    ///
    /// This is the "heap of facts without organization" baseline of the
    /// paper's trade-off principle (§1); experiment E1 measures it against
    /// [`FactStore::matching`]. It is also used by property tests as the
    /// oracle for the indexed path.
    pub fn matching_scan<'a>(&'a self, pattern: Pattern) -> impl Iterator<Item = Fact> + 'a {
        self.index.iter().filter(move |f| pattern.matches(f))
    }

    /// Counts matches of a pattern.
    pub fn count(&self, pattern: Pattern) -> usize {
        self.index.count(pattern)
    }

    /// Counts matches, stopping at `cap` (planner selectivity probes).
    pub fn count_up_to(&self, pattern: Pattern, cap: usize) -> usize {
        self.index.count_up_to(pattern, cap)
    }

    /// All stored facts in `(s, r, t)` order.
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        self.index.iter()
    }

    /// The distinct relationship entities in use.
    pub fn relationships(&self) -> Vec<EntityId> {
        self.index.relationships()
    }

    // ------------------------------------------------------------------
    // Change tracking
    // ------------------------------------------------------------------

    /// A counter bumped on every successful mutation. Derived structures
    /// (e.g. the engine's closure cache) compare epochs to decide whether
    /// they are stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Summary statistics.
    pub fn stats(&self) -> StoreStats {
        let rels = self.relationships();
        let rel_counts: Vec<(EntityId, usize)> =
            rels.iter().map(|&r| (r, self.count(Pattern::from_rel(r)))).collect();
        StoreStats {
            facts: self.len(),
            entities: self.entity_count(),
            distinct_relationships: rels.len(),
            rel_counts,
        }
    }
}

impl Default for FactStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Summary statistics of a [`FactStore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreStats {
    /// Total number of facts.
    pub facts: usize,
    /// Total number of interned entities (including reserved specials and
    /// entities not used in any fact).
    pub entities: usize,
    /// Number of distinct relationship entities in use.
    pub distinct_relationships: usize,
    /// Fact count per relationship, in id order.
    pub rel_counts: Vec<(EntityId, usize)>,
}

/// Convenience: the seven structural special ids re-exported on the store
/// type for ergonomic fact building.
impl FactStore {
    /// The generalization relationship `≺`.
    pub const GEN: EntityId = special::GEN;
    /// The membership relationship `∈`.
    pub const ISA: EntityId = special::ISA;
    /// The synonym relationship `≈`.
    pub const SYN: EntityId = special::SYN;
    /// The inversion relationship `⁺`.
    pub const INV: EntityId = special::INV;
    /// The contradiction relationship `⊥`.
    pub const CONTRA: EntityId = special::CONTRA;
    /// The most abstract entity `Δ`.
    pub const TOP: EntityId = special::TOP;
    /// The most specific entity `∇`.
    pub const BOT: EntityId = special::BOT;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_interns_and_inserts() {
        let mut store = FactStore::new();
        let f = store.add("JOHN", "EARNS", 25000i64);
        assert!(store.contains(&f));
        assert_eq!(store.display_fact(&f), "(JOHN, EARNS, 25000)");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn duplicate_add_is_idempotent() {
        let mut store = FactStore::new();
        let a = store.add("JOHN", "LIKES", "FELIX");
        let b = store.add("JOHN", "LIKES", "FELIX");
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn paper_section_2_6_permissiveness() {
        // §2.6: inconsistencies and replications are allowed at this layer.
        let mut store = FactStore::new();
        store.add("MARY", "MAJOR", "MATH");
        store.add("MARY", "ASSISTANT", "MATH"); // same pair, different rel
        store.add("JOHN", "LIKES", "FELIX");
        store.add("PERSON", "LIKES", "PERSON"); // same rel, other pairs
        store.add("TOM", "ENROLLED-IN", "CS100");
        store.add("TOM", "ENROLLED-IN", "MATH101"); // many-to-many
        store.add("SUE", "ENROLLED-IN", "MATH101");
        store.add("JOHN", "EARN", 25000i64);
        store.add("JOHN", "EARN", 40000i64); // inconsistency allowed
        store.add("JOHN", "INCOME", 40000i64); // replication allowed
        assert_eq!(store.len(), 10);
        let john = store.lookup_symbol("JOHN").unwrap();
        assert_eq!(store.count(Pattern::from_source(john)), 4);
    }

    #[test]
    fn epoch_bumps_only_on_real_changes() {
        let mut store = FactStore::new();
        let e0 = store.epoch();
        let f = store.add("A", "R", "B");
        let e1 = store.epoch();
        assert!(e1 > e0);
        store.insert(f); // duplicate: no change
        assert_eq!(store.epoch(), e1);
        store.remove(&f);
        assert!(store.epoch() > e1);
        let e2 = store.epoch();
        store.remove(&f); // absent: no change
        assert_eq!(store.epoch(), e2);
    }

    #[test]
    fn scan_and_index_agree() {
        let mut store = FactStore::new();
        store.add("A", "R", "B");
        store.add("A", "R", "C");
        store.add("B", "S", "C");
        let r = store.lookup_symbol("R").unwrap();
        let via_index: Vec<Fact> = store.matching(Pattern::from_rel(r)).collect();
        let via_scan: Vec<Fact> = store.matching_scan(Pattern::from_rel(r)).collect();
        assert_eq!(via_index.len(), 2);
        assert_eq!(
            via_index.iter().collect::<std::collections::BTreeSet<_>>(),
            via_scan.iter().collect::<std::collections::BTreeSet<_>>()
        );
    }

    #[test]
    fn stats() {
        let mut store = FactStore::new();
        store.add("A", "R", "B");
        store.add("C", "R", "D");
        store.add("A", "S", "B");
        let stats = store.stats();
        assert_eq!(stats.facts, 3);
        assert_eq!(stats.distinct_relationships, 2);
        let r = store.lookup_symbol("R").unwrap();
        assert!(stats.rel_counts.contains(&(r, 2)));
    }

    #[test]
    fn clear_keeps_entities() {
        let mut store = FactStore::new();
        store.add("A", "R", "B");
        let entities = store.entity_count();
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.entity_count(), entities);
        assert!(store.lookup_symbol("A").is_some());
    }

    #[test]
    fn special_constants_available() {
        let mut store = FactStore::new();
        let employee = store.entity("EMPLOYEE");
        let person = store.entity("PERSON");
        store.insert(Fact::new(employee, FactStore::GEN, person));
        assert!(store.contains(&Fact::new(employee, special::GEN, person)));
    }
}
