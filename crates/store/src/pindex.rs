//! Persistent ordered containers: an immutable B-tree with `Arc`-shared
//! nodes and path-copying updates.
//!
//! [`PMap`] and [`PSet`] are drop-in ordered containers whose `clone` is
//! O(1) (a reference-count bump on the root) and whose `insert`/`remove`
//! copy only the O(log N) nodes on the root-to-leaf path that actually
//! changes — every untouched subtree is shared *by pointer* with all other
//! clones. This is what makes generation publishing O(delta · log N): a
//! published [`crate::TripleIndex`] generation and the writer's working
//! copy share all but a handful of nodes.
//!
//! Two properties make the sharing safe:
//!
//! * Nodes are only reachable through `Arc`s and are never mutated while
//!   shared: every write path goes through [`Arc::make_mut`], which mutates
//!   in place when the node is uniquely owned (the common case for a
//!   writer between publishes — "transient" mutation at ordinary B-tree
//!   speed) and clones the node first when a snapshot still holds it.
//! * Structure is a B+-tree: all entries live in leaves, interior nodes
//!   hold only routing separators, so path copies never duplicate values
//!   outside the touched leaf.
//!
//! The tree is parameterised over `K: Ord + Clone` / `V: Clone`; the store
//! instantiates it with `[u32; 3]` rotation keys (see [`crate::TripleIndex`]),
//! the interner with `EntityValue` keys, and the engine with `Fact`
//! provenance entries and domain occurrence counts.

use std::fmt;
use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Maximum entries per leaf and children per branch. 16 keeps nodes around
/// a cache line or two for the store's 12-byte rotation keys while keeping
/// path copies (the publish cost) small.
const B: usize = 16;
/// Minimum fill for non-root nodes.
const MIN: usize = B / 2;

enum Node<K, V> {
    /// All entries live in leaves, in ascending key order.
    Leaf { entries: Vec<(K, V)> },
    /// Routing node: `children.len() == seps.len() + 1`; every key in
    /// `children[..=i]` is `< seps[i]` and every key in `children[i+1..]`
    /// is `>= seps[i]`. Separators may be stale copies of since-removed
    /// keys; the invariant above is all routing needs.
    Branch { seps: Vec<K>, children: Vec<Arc<Node<K, V>>> },
}

impl<K: Clone, V: Clone> Clone for Node<K, V> {
    fn clone(&self) -> Self {
        match self {
            Node::Leaf { entries } => Node::Leaf { entries: entries.clone() },
            Node::Branch { seps, children } => {
                Node::Branch { seps: seps.clone(), children: children.clone() }
            }
        }
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for Node<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Leaf { entries } => f.debug_struct("Leaf").field("entries", entries).finish(),
            Node::Branch { seps, children } => f
                .debug_struct("Branch")
                .field("seps", seps)
                .field("children", &children.len())
                .finish(),
        }
    }
}

/// Child index that may contain `key`: first child whose separator exceeds it.
#[inline]
fn route<K: Ord>(seps: &[K], key: &K) -> usize {
    seps.partition_point(|s| s <= key)
}

/// A persistent ordered map. `clone` is O(1); `insert`/`remove` are
/// O(log N) and copy only the touched root-to-leaf path when the tree is
/// shared with another clone (pure in-place mutation otherwise).
pub struct PMap<K, V> {
    root: Arc<Node<K, V>>,
    len: usize,
}

impl<K, V> Clone for PMap<K, V> {
    #[inline]
    fn clone(&self) -> Self {
        Self { root: Arc::clone(&self.root), len: self.len }
    }
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        Self { root: Arc::new(Node::Leaf { entries: Vec::new() }), len: 0 }
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PMap {{ len: {} }}", self.len)
    }
}

impl<K: Ord + Clone, V: Clone> PMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every entry (O(1) if other clones still share the nodes).
    pub fn clear(&mut self) {
        *self = Self::default();
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = &*self.root;
        loop {
            match node {
                Node::Leaf { entries } => {
                    return match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                        Ok(i) => Some(&entries[i].1),
                        Err(_) => None,
                    };
                }
                Node::Branch { seps, children } => node = &children[route(seps, key)],
            }
        }
    }

    /// True if the key is present.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Mutable lookup. Path-copies the nodes down to the key when the tree
    /// is shared (even on a miss — prefer [`PMap::get`] to probe first
    /// when misses are common).
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        fn rec<'a, K: Ord + Clone, V: Clone>(
            node: &'a mut Arc<Node<K, V>>,
            key: &K,
        ) -> Option<&'a mut V> {
            match Arc::make_mut(node) {
                Node::Leaf { entries } => match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                    Ok(i) => Some(&mut entries[i].1),
                    Err(_) => None,
                },
                Node::Branch { seps, children } => {
                    let ci = route(seps, key);
                    rec(&mut children[ci], key)
                }
            }
        }
        rec(&mut self.root, key)
    }

    /// Inserts a key/value pair, returning the previous value if the key
    /// was already present. Copies only the root-to-leaf path when shared.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (old, split) = insert_rec(&mut self.root, key, value);
        if let Some((sep, right)) = split {
            let left =
                std::mem::replace(&mut self.root, Arc::new(Node::Leaf { entries: Vec::new() }));
            self.root = Arc::new(Node::Branch { seps: vec![sep], children: vec![left, right] });
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes a key, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        // Probe first so a miss never path-copies shared nodes.
        if !self.contains_key(key) {
            return None;
        }
        let removed = remove_rec(&mut self.root, key);
        debug_assert!(removed.is_some());
        self.len -= 1;
        // Collapse a root branch left with a single child.
        loop {
            let single = match &*self.root {
                Node::Branch { children, .. } if children.len() == 1 => Arc::clone(&children[0]),
                _ => break,
            };
            self.root = single;
        }
        removed
    }

    /// Iterates entries in ascending key order.
    pub fn iter(&self) -> Range<'_, K, V> {
        self.range(..)
    }

    /// Iterates entries whose keys fall in `bounds`, in ascending order.
    pub fn range<R: RangeBounds<K>>(&self, bounds: R) -> Range<'_, K, V> {
        let mut stack = Vec::new();
        match bounds.start_bound() {
            Bound::Unbounded => stack.push((&*self.root, 0usize)),
            Bound::Included(k) | Bound::Excluded(k) => {
                let excl = matches!(bounds.start_bound(), Bound::Excluded(_));
                let mut node = &*self.root;
                loop {
                    match node {
                        Node::Branch { seps, children } => {
                            let ci = route(seps, k);
                            // Children before `ci` hold only keys below the
                            // start bound; resume after `ci` once it drains.
                            stack.push((node, ci + 1));
                            node = &children[ci];
                        }
                        Node::Leaf { entries } => {
                            let i = if excl {
                                entries.partition_point(|(ek, _)| ek <= k)
                            } else {
                                entries.partition_point(|(ek, _)| ek < k)
                            };
                            stack.push((node, i));
                            break;
                        }
                    }
                }
            }
        }
        let end = match bounds.end_bound() {
            Bound::Unbounded => Bound::Unbounded,
            Bound::Included(k) => Bound::Included(k.clone()),
            Bound::Excluded(k) => Bound::Excluded(k.clone()),
        };
        Range { stack, end }
    }

    /// Calls `f` with the address of every node in the tree. Testing aid:
    /// structural-sharing assertions compare the node sets of two clones
    /// to prove untouched subtrees are pointer-equal.
    pub fn for_each_node_addr(&self, f: &mut dyn FnMut(usize)) {
        fn walk<K, V>(node: &Arc<Node<K, V>>, f: &mut dyn FnMut(usize)) {
            f(Arc::as_ptr(node) as *const u8 as usize);
            if let Node::Branch { children, .. } = &**node {
                for c in children {
                    walk(c, f);
                }
            }
        }
        walk(&self.root, f);
    }
}

impl<K: Ord + Clone + PartialEq, V: Clone + PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}
impl<K: Ord + Clone + Eq, V: Clone + Eq> Eq for PMap<K, V> {}

/// Result of a recursive insert: previous value (replacement) and, on
/// overflow, the separator plus new right sibling to graft into the parent.
type Split<K, V> = Option<(K, Arc<Node<K, V>>)>;

fn insert_rec<K: Ord + Clone, V: Clone>(
    node: &mut Arc<Node<K, V>>,
    key: K,
    value: V,
) -> (Option<V>, Split<K, V>) {
    match Arc::make_mut(node) {
        Node::Leaf { entries } => match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => (Some(std::mem::replace(&mut entries[i].1, value)), None),
            Err(i) => {
                entries.insert(i, (key, value));
                if entries.len() > B {
                    let right = entries.split_off(entries.len() / 2);
                    let sep = right[0].0.clone();
                    (None, Some((sep, Arc::new(Node::Leaf { entries: right }))))
                } else {
                    (None, None)
                }
            }
        },
        Node::Branch { seps, children } => {
            let ci = route(seps, &key);
            let (old, split) = insert_rec(&mut children[ci], key, value);
            if let Some((sep, right)) = split {
                seps.insert(ci, sep);
                children.insert(ci + 1, right);
                if children.len() > B {
                    let mid = children.len() / 2;
                    let right_children = children.split_off(mid);
                    let right_seps = seps.split_off(mid);
                    let promoted = seps.pop().expect("split branch has separators");
                    let right =
                        Arc::new(Node::Branch { seps: right_seps, children: right_children });
                    return (old, Some((promoted, right)));
                }
            }
            (old, None)
        }
    }
}

fn remove_rec<K: Ord + Clone, V: Clone>(node: &mut Arc<Node<K, V>>, key: &K) -> Option<V> {
    match Arc::make_mut(node) {
        Node::Leaf { entries } => match entries.binary_search_by(|(k, _)| k.cmp(key)) {
            Ok(i) => Some(entries.remove(i).1),
            Err(_) => None,
        },
        Node::Branch { seps, children } => {
            let ci = route(seps, key);
            let removed = remove_rec(&mut children[ci], key)?;
            if underfull(&children[ci]) {
                rebalance(seps, children, ci);
            }
            Some(removed)
        }
    }
}

fn underfull<K, V>(node: &Arc<Node<K, V>>) -> bool {
    match &**node {
        Node::Leaf { entries } => entries.len() < MIN,
        Node::Branch { children, .. } => children.len() < MIN,
    }
}

fn can_lend<K, V>(node: &Arc<Node<K, V>>) -> bool {
    match &**node {
        Node::Leaf { entries } => entries.len() > MIN,
        Node::Branch { children, .. } => children.len() > MIN,
    }
}

/// Restores the fill invariant of `children[ci]` by borrowing from a
/// sibling or merging with one. Called with `children[ci]` underfull.
fn rebalance<K: Ord + Clone, V: Clone>(
    seps: &mut Vec<K>,
    children: &mut Vec<Arc<Node<K, V>>>,
    ci: usize,
) {
    if ci > 0 && can_lend(&children[ci - 1]) {
        borrow_from_left(seps, children, ci);
    } else if ci + 1 < children.len() && can_lend(&children[ci + 1]) {
        borrow_from_right(seps, children, ci);
    } else if ci > 0 {
        merge(seps, children, ci - 1);
    } else {
        merge(seps, children, ci);
    }
}

/// Moves the last entry (or child) of `children[ci - 1]` to the front of
/// `children[ci]`, rotating separators through the parent.
fn borrow_from_left<K: Ord + Clone, V: Clone>(
    seps: &mut [K],
    children: &mut [Arc<Node<K, V>>],
    ci: usize,
) {
    let (head, tail) = children.split_at_mut(ci);
    let left = Arc::make_mut(&mut head[ci - 1]);
    let cur = Arc::make_mut(&mut tail[0]);
    match (left, cur) {
        (Node::Leaf { entries: le }, Node::Leaf { entries: ce }) => {
            let moved = le.pop().expect("lender is non-empty");
            seps[ci - 1] = moved.0.clone();
            ce.insert(0, moved);
        }
        (Node::Branch { seps: ls, children: lc }, Node::Branch { seps: cs, children: cc }) => {
            let child = lc.pop().expect("lender is non-empty");
            let new_sep = ls.pop().expect("lender branch has separators");
            let old_sep = std::mem::replace(&mut seps[ci - 1], new_sep);
            cs.insert(0, old_sep);
            cc.insert(0, child);
        }
        _ => unreachable!("siblings are at the same depth"),
    }
}

/// Moves the first entry (or child) of `children[ci + 1]` to the back of
/// `children[ci]`, rotating separators through the parent.
fn borrow_from_right<K: Ord + Clone, V: Clone>(
    seps: &mut [K],
    children: &mut [Arc<Node<K, V>>],
    ci: usize,
) {
    let (head, tail) = children.split_at_mut(ci + 1);
    let cur = Arc::make_mut(&mut head[ci]);
    let right = Arc::make_mut(&mut tail[0]);
    match (cur, right) {
        (Node::Leaf { entries: ce }, Node::Leaf { entries: re }) => {
            ce.push(re.remove(0));
            seps[ci] = re[0].0.clone();
        }
        (Node::Branch { seps: cs, children: cc }, Node::Branch { seps: rs, children: rc }) => {
            let child = rc.remove(0);
            let new_sep = rs.remove(0);
            let old_sep = std::mem::replace(&mut seps[ci], new_sep);
            cs.push(old_sep);
            cc.push(child);
        }
        _ => unreachable!("siblings are at the same depth"),
    }
}

/// Merges `children[i + 1]` into `children[i]`, dropping separator `i`.
/// Only called when the pair fits in one node.
fn merge<K: Ord + Clone, V: Clone>(
    seps: &mut Vec<K>,
    children: &mut Vec<Arc<Node<K, V>>>,
    i: usize,
) {
    let sep = seps.remove(i);
    let right = children.remove(i + 1);
    let left = Arc::make_mut(&mut children[i]);
    match (left, &*right) {
        (Node::Leaf { entries: le }, Node::Leaf { entries: re }) => {
            le.extend(re.iter().cloned());
        }
        (Node::Branch { seps: ls, children: lc }, Node::Branch { seps: rs, children: rc }) => {
            ls.push(sep);
            ls.extend(rs.iter().cloned());
            lc.extend(rc.iter().cloned());
        }
        _ => unreachable!("siblings are at the same depth"),
    }
}

/// In-order iterator over a key range (see [`PMap::range`]).
pub struct Range<'a, K, V> {
    /// Stack of (node, next index): entry index in leaves, child index in
    /// branches. Untouched siblings are never visited.
    stack: Vec<(&'a Node<K, V>, usize)>,
    end: Bound<K>,
}

impl<'a, K: Ord, V> Iterator for Range<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<(&'a K, &'a V)> {
        loop {
            let (node, idx) = self.stack.last_mut()?;
            match node {
                Node::Leaf { entries } => {
                    if *idx < entries.len() {
                        let (k, v) = &entries[*idx];
                        *idx += 1;
                        let in_range = match &self.end {
                            Bound::Unbounded => true,
                            Bound::Included(e) => k <= e,
                            Bound::Excluded(e) => k < e,
                        };
                        if in_range {
                            return Some((k, v));
                        }
                        self.stack.clear();
                        return None;
                    }
                    self.stack.pop();
                }
                Node::Branch { children, .. } => {
                    if *idx < children.len() {
                        let child = &children[*idx];
                        *idx += 1;
                        self.stack.push((child, 0));
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

/// A persistent ordered set: [`PMap`] with unit values.
#[derive(Clone, Default)]
pub struct PSet<K> {
    map: PMap<K, ()>,
}

impl<K: Ord + Clone> PartialEq for PSet<K> {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}
impl<K: Ord + Clone> Eq for PSet<K> {}

impl<K: fmt::Debug> fmt::Debug for PSet<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PSet {{ len: {} }}", self.map.len)
    }
}

impl<K: Ord + Clone> PSet<K> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self { map: PMap::new() }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every element.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts an element; returns true if it was not already present.
    pub fn insert(&mut self, key: K) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// Removes an element; returns true if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        self.map.remove(key).is_some()
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> SetRange<'_, K> {
        SetRange(self.map.iter())
    }

    /// Iterates elements within `bounds` in ascending order.
    pub fn range<R: RangeBounds<K>>(&self, bounds: R) -> SetRange<'_, K> {
        SetRange(self.map.range(bounds))
    }

    /// See [`PMap::for_each_node_addr`].
    pub fn for_each_node_addr(&self, f: &mut dyn FnMut(usize)) {
        self.map.for_each_node_addr(f);
    }
}

/// In-order iterator over set elements in a key range.
pub struct SetRange<'a, K>(Range<'a, K, ()>);

impl<'a, K: Ord> Iterator for SetRange<'a, K> {
    type Item = &'a K;

    #[inline]
    fn next(&mut self) -> Option<&'a K> {
        self.0.next().map(|(k, ())| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: PMap<u32, u32> = PMap::new();
        for i in 0..500u32 {
            assert_eq!(m.insert(i * 7 % 501, i), None);
        }
        assert_eq!(m.len(), 500);
        for i in 0..500u32 {
            assert_eq!(m.get(&(i * 7 % 501)), Some(&i));
        }
        let prev = m.get(&3).copied();
        assert_eq!(m.insert(3, 999), prev);
        assert_eq!(m.get(&3), Some(&999));
        assert_eq!(m.len(), 500);
        assert_eq!(m.remove(&3), Some(999));
        assert_eq!(m.remove(&3), None);
        assert_eq!(m.len(), 499);
    }

    #[test]
    fn matches_btreemap_on_mixed_ops() {
        let mut m: PMap<u32, u64> = PMap::new();
        let mut model: BTreeMap<u32, u64> = BTreeMap::new();
        let mut x: u64 = 0x2545F4914F6CDD1D;
        for step in 0..20_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x % 4096) as u32;
            if x & 0x10000 == 0 || model.len() < 32 {
                assert_eq!(m.insert(k, step), model.insert(k, step), "step {step}");
            } else {
                assert_eq!(m.remove(&k), model.remove(&k), "step {step}");
            }
            assert_eq!(m.len(), model.len());
        }
        assert!(m.iter().map(|(k, v)| (*k, *v)).eq(model.iter().map(|(k, v)| (*k, *v))));
    }

    #[test]
    fn range_bounds_agree_with_btreemap() {
        let mut m: PMap<u32, ()> = PMap::new();
        let mut model: BTreeMap<u32, ()> = BTreeMap::new();
        for i in (0..1000u32).step_by(3) {
            m.insert(i, ());
            model.insert(i, ());
        }
        let bounds: Vec<(Bound<u32>, Bound<u32>)> = vec![
            (Bound::Unbounded, Bound::Unbounded),
            (Bound::Included(10), Bound::Included(500)),
            (Bound::Included(11), Bound::Excluded(502)),
            (Bound::Excluded(9), Bound::Included(9)),
            (Bound::Included(999), Bound::Unbounded),
            (Bound::Unbounded, Bound::Excluded(0)),
            (Bound::Included(1001), Bound::Included(2000)),
        ];
        for b in bounds {
            let got: Vec<u32> = m.range(b).map(|(k, _)| *k).collect();
            let want: Vec<u32> = model.range(b).map(|(k, _)| *k).collect();
            assert_eq!(got, want, "bounds {b:?}");
        }
    }

    #[test]
    fn clone_shares_structure_and_diverges_on_write() {
        let mut a: PMap<u32, u32> = PMap::new();
        for i in 0..10_000 {
            a.insert(i, i);
        }
        let b = a.clone();
        let mut before = Vec::new();
        a.for_each_node_addr(&mut |p| before.push(p));

        a.insert(10_000, 10_000);
        a.remove(&0);
        assert_eq!(b.len(), 10_000);
        assert_eq!(b.get(&0), Some(&0));
        assert_eq!(a.get(&0), None);

        // The updated tree reuses almost every node of the snapshot: only
        // the two touched root-to-leaf paths were copied.
        let shared: std::collections::HashSet<usize> = before.into_iter().collect();
        let mut fresh = 0usize;
        let mut total = 0usize;
        a.for_each_node_addr(&mut |p| {
            total += 1;
            if !shared.contains(&p) {
                fresh += 1;
            }
        });
        assert!(total > 100, "tree should have many nodes, has {total}");
        assert!(fresh <= 16, "expected O(log N) fresh nodes, found {fresh}/{total}");
    }

    #[test]
    fn unique_owner_mutates_in_place() {
        let mut a: PMap<u32, u32> = PMap::new();
        for i in 0..5_000 {
            a.insert(i, i);
        }
        let mut before = Vec::new();
        a.for_each_node_addr(&mut |p| before.push(p));
        let root_before = before[0];
        a.insert(2_500, 99); // replacement, uniquely owned: no copying
        let mut after = Vec::new();
        a.for_each_node_addr(&mut |p| after.push(p));
        assert_eq!(root_before, after[0], "unique root must be reused in place");
        assert_eq!(before, after, "no node should be reallocated");
    }

    #[test]
    fn set_semantics() {
        let mut s: PSet<[u32; 3]> = PSet::new();
        assert!(s.insert([1, 2, 3]));
        assert!(!s.insert([1, 2, 3]));
        assert!(s.contains(&[1, 2, 3]));
        assert!(s.remove(&[1, 2, 3]));
        assert!(!s.remove(&[1, 2, 3]));
        assert!(s.is_empty());
    }

    #[test]
    fn drain_to_empty_and_refill() {
        let mut s: PSet<u32> = PSet::new();
        for round in 0..3 {
            for i in 0..2_000u32 {
                assert!(s.insert(i), "round {round}");
            }
            assert_eq!(s.len(), 2_000);
            for i in 0..2_000u32 {
                assert!(s.remove(&i), "round {round}");
            }
            assert!(s.is_empty(), "round {round}");
        }
    }

    #[test]
    fn reverse_and_random_deletion_orders() {
        for seed in [1u64, 7, 42] {
            let mut s: PSet<u32> = PSet::new();
            let mut keys: Vec<u32> = (0..3_000).collect();
            for &k in &keys {
                s.insert(k);
            }
            // Pseudo-shuffle deletion order with a deterministic hash.
            keys.sort_by_key(|k| {
                (seed.wrapping_add(*k as u64)).wrapping_mul(6364136223846793005).rotate_left(17)
            });
            for (n, k) in keys.iter().enumerate() {
                assert!(s.remove(k), "seed {seed} step {n}");
                assert_eq!(s.len(), 3_000 - n - 1);
            }
        }
    }
}
