//! Crash-safe storage primitives: checksums, atomic file replacement,
//! and a pluggable I/O layer with fault injection.
//!
//! The paper leaves "suitable storage strategies" open (§6.2); the
//! durability substrate built here makes the snapshot + log design of
//! [`crate::snapshot`] and [`crate::log`] crash-safe:
//!
//! * [`crc32`] — the IEEE CRC32 used to frame log records and to
//!   checksum snapshot manifests.
//! * [`StorageIo`] — the primitive file operations the persistence layer
//!   needs, as a trait so tests can inject faults at every I/O point.
//! * [`RealIo`] (the filesystem), [`MemIo`] (an in-memory filesystem for
//!   fast deterministic tests) and [`FaultIo`] (a wrapper that fails —
//!   with a torn half-write — on the Nth mutating operation and every
//!   operation after it, simulating a crash).
//! * [`atomic_write_with`] / [`atomic_write`] — write-temp → fsync →
//!   rename → fsync-dir replacement, so readers observe either the old
//!   or the new file, never a torn mixture.

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The IEEE CRC32 lookup table (polynomial `0xEDB88320`, reflected).
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes the IEEE CRC32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// The primitive file operations behind the persistence layer.
///
/// Durability-relevant code must route *every* file access through this
/// trait so the fault-injection tests can crash it at any point. Mutating
/// operations are `write`, `append`, `truncate`, `fsync`, `sync_dir`,
/// `rename`, `remove_file` and `create_dir_all`; read-only operations
/// never count as fault points.
pub trait StorageIo: Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// True if the path names an existing file.
    fn exists(&self, path: &Path) -> bool;

    /// Lists the files directly inside a directory.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Creates a directory and its ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Creates or truncates a file with the given contents.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Appends to a file, creating it if missing.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Truncates a file to a length (used to drop a torn log tail).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Flushes a file's data to stable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;

    /// Flushes a directory entry (making renames/creates durable).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Atomically replaces `to` with `from` (POSIX rename semantics).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Deletes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
}

/// Delegates every [`StorageIo`] operation through `Box`, so callers can
/// hold `Box<dyn StorageIo>` and pick a backend at runtime (the serving
/// layer's journal does; `Arc<I>` and `&I` delegate the same way below).
macro_rules! delegate_storage_io {
    ($ptr:ty) => {
        impl<T: StorageIo + ?Sized> StorageIo for $ptr {
            fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
                (**self).read(path)
            }
            fn exists(&self, path: &Path) -> bool {
                (**self).exists(path)
            }
            fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
                (**self).list(dir)
            }
            fn create_dir_all(&self, path: &Path) -> io::Result<()> {
                (**self).create_dir_all(path)
            }
            fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
                (**self).write(path, data)
            }
            fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
                (**self).append(path, data)
            }
            fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
                (**self).truncate(path, len)
            }
            fn fsync(&self, path: &Path) -> io::Result<()> {
                (**self).fsync(path)
            }
            fn sync_dir(&self, dir: &Path) -> io::Result<()> {
                (**self).sync_dir(dir)
            }
            fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
                (**self).rename(from, to)
            }
            fn remove_file(&self, path: &Path) -> io::Result<()> {
                (**self).remove_file(path)
            }
        }
    };
}

delegate_storage_io!(Box<T>);

/// The real filesystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealIo;

impl StorageIo for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        file.write_all(data)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync is POSIX-specific; opening a directory as a
        // file works on Linux and macOS. Failure here is not ignorable:
        // an unsynced rename can vanish on power loss.
        std::fs::File::open(dir)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

/// An in-memory filesystem for fast, deterministic durability tests.
///
/// Every file tracks which prefix of its contents has been `fsync`ed, so
/// [`MemIo::crash`] can model power loss pessimistically: unsynced bytes
/// are dropped. (Directory-entry durability is modeled optimistically: a
/// rename survives a crash once the renamed file's *data* was synced.)
/// Shared via `Arc`, so a test can run a workload through a [`FaultIo`]
/// wrapper, crash, and then recover from the same files.
#[derive(Debug, Default)]
pub struct MemIo {
    state: Mutex<MemState>,
}

#[derive(Debug, Default)]
struct MemState {
    files: HashMap<PathBuf, FileBuf>,
    dirs: HashSet<PathBuf>,
}

#[derive(Debug, Default)]
struct FileBuf {
    data: Vec<u8>,
    /// Bytes guaranteed on stable storage (`data[..synced]`).
    synced: usize,
}

impl MemIo {
    /// An empty in-memory filesystem.
    pub fn new() -> Self {
        MemIo::default()
    }

    /// Locks the filesystem map, recovering from poisoning: a panicking
    /// test thread must not cascade into unrelated recovery assertions.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, MemState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A snapshot of every file (for debugging assertions).
    pub fn files(&self) -> Vec<(PathBuf, usize)> {
        let state = self.lock_state();
        let mut out: Vec<_> = state.files.iter().map(|(p, f)| (p.clone(), f.data.len())).collect();
        out.sort();
        out
    }

    /// Simulates power loss: every file loses the bytes written since its
    /// last `fsync`. Call after a [`FaultIo`] fault fires, before driving
    /// recovery against the surviving state.
    pub fn crash(&self) {
        let mut state = self.lock_state();
        for file in state.files.values_mut() {
            file.data.truncate(file.synced);
        }
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("no such file: {}", path.display()))
}

impl StorageIo for MemIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let state = self.lock_state();
        state.files.get(path).map(|f| f.data.clone()).ok_or_else(|| not_found(path))
    }

    fn exists(&self, path: &Path) -> bool {
        let state = self.lock_state();
        state.files.contains_key(path) || state.dirs.contains(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let state = self.lock_state();
        let mut out: Vec<PathBuf> =
            state.files.keys().filter(|p| p.parent() == Some(dir)).cloned().collect();
        out.sort();
        Ok(out)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock_state();
        let mut p = Some(path);
        while let Some(dir) = p {
            state.dirs.insert(dir.to_path_buf());
            p = dir.parent();
        }
        Ok(())
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut state = self.lock_state();
        state.files.insert(path.to_path_buf(), FileBuf { data: data.to_vec(), synced: 0 });
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut state = self.lock_state();
        state.files.entry(path.to_path_buf()).or_default().data.extend_from_slice(data);
        Ok(())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut state = self.lock_state();
        let file = state.files.get_mut(path).ok_or_else(|| not_found(path))?;
        file.data.truncate(len as usize);
        file.synced = file.synced.min(len as usize);
        Ok(())
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock_state();
        let file = state.files.get_mut(path).ok_or_else(|| not_found(path))?;
        file.synced = file.data.len();
        Ok(())
    }

    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut state = self.lock_state();
        let data = state.files.remove(from).ok_or_else(|| not_found(from))?;
        state.files.insert(to.to_path_buf(), data);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut state = self.lock_state();
        state.files.remove(path).map(|_| ()).ok_or_else(|| not_found(path))
    }
}

/// A fault-injecting wrapper: the `limit`-th mutating operation — and
/// every mutating operation after it — fails, simulating a crash.
///
/// The failing operation is realistic about *how* it dies: `write` and
/// `append` first apply **half** of their payload (a torn write at the
/// point of power loss), then report the error. Read-only operations
/// (`read`, `exists`, `list`) never fail, so recovery code can be driven
/// against the post-crash state through the same handle.
#[derive(Debug)]
pub struct FaultIo<I> {
    inner: I,
    used: AtomicUsize,
    limit: usize,
}

/// The error kind produced by injected faults.
pub const INJECTED_FAULT: io::ErrorKind = io::ErrorKind::Other;

impl<I: StorageIo> FaultIo<I> {
    /// Wraps `inner`, allowing `limit` mutating operations to succeed.
    pub fn new(inner: I, limit: usize) -> Self {
        FaultIo { inner, used: AtomicUsize::new(0), limit }
    }

    /// The number of mutating operations attempted so far.
    pub fn ops_used(&self) -> usize {
        self.used.load(Ordering::SeqCst)
    }

    /// The wrapped I/O layer.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Counts one mutating operation; `Err` once the budget is spent.
    fn charge(&self) -> io::Result<()> {
        let n = self.used.fetch_add(1, Ordering::SeqCst);
        if n >= self.limit {
            Err(io::Error::new(INJECTED_FAULT, format!("injected fault at I/O op {n}")))
        } else {
            Ok(())
        }
    }
}

impl<I: StorageIo> StorageIo for FaultIo<I> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.list(dir)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.charge()?;
        self.inner.create_dir_all(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        if let Err(e) = self.charge() {
            // A torn create: half the payload reached the disk.
            let _ = self.inner.write(path, &data[..data.len() / 2]);
            return Err(e);
        }
        self.inner.write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        if let Err(e) = self.charge() {
            // A torn append: the record stops mid-way.
            let _ = self.inner.append(path, &data[..data.len() / 2]);
            return Err(e);
        }
        self.inner.append(path, data)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.charge()?;
        self.inner.truncate(path, len)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        self.charge()?;
        self.inner.fsync(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.charge()?;
        self.inner.sync_dir(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.charge()?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.charge()?;
        self.inner.remove_file(path)
    }
}

impl<I: StorageIo + ?Sized> StorageIo for &I {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        (**self).read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        (**self).exists(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        (**self).list(dir)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        (**self).create_dir_all(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        (**self).write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        (**self).append(path, data)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        (**self).truncate(path, len)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        (**self).fsync(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        (**self).sync_dir(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        (**self).rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        (**self).remove_file(path)
    }
}

impl<I: StorageIo + ?Sized> StorageIo for Arc<I> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        (**self).read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        (**self).exists(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        (**self).list(dir)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        (**self).create_dir_all(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        (**self).write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        (**self).append(path, data)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        (**self).truncate(path, len)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        (**self).fsync(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        (**self).sync_dir(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        (**self).rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        (**self).remove_file(path)
    }
}

/// Atomically replaces `path` with `data` through an I/O layer:
/// write to `<path>.tmp`, fsync, rename over `path`, fsync the directory.
/// A crash at any point leaves either the old complete file or the new
/// complete file.
pub fn atomic_write_with(io: &dyn StorageIo, path: &Path, data: &[u8]) -> io::Result<()> {
    let mut tmp_name = path.file_name().map(|n| n.to_os_string()).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "atomic write needs a file name")
    })?;
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    io.write(&tmp, data)?;
    io.fsync(&tmp)?;
    io.rename(&tmp, path)?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        io.sync_dir(parent)?;
    }
    Ok(())
}

/// [`atomic_write_with`] on the real filesystem.
pub fn atomic_write(path: impl AsRef<Path>, data: &[u8]) -> io::Result<()> {
    atomic_write_with(&RealIo, path.as_ref(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn mem_io_behaves_like_a_filesystem() {
        let io = MemIo::new();
        let dir = Path::new("/db");
        io.create_dir_all(dir).unwrap();
        assert!(io.exists(dir));
        let f = dir.join("a.log");
        io.append(&f, b"hel").unwrap();
        io.append(&f, b"lo").unwrap();
        assert_eq!(io.read(&f).unwrap(), b"hello");
        io.truncate(&f, 4).unwrap();
        assert_eq!(io.read(&f).unwrap(), b"hell");
        io.write(&f, b"x").unwrap();
        assert_eq!(io.read(&f).unwrap(), b"x");
        let g = dir.join("b.log");
        io.rename(&f, &g).unwrap();
        assert!(!io.exists(&f));
        assert_eq!(io.list(dir).unwrap(), vec![g.clone()]);
        io.remove_file(&g).unwrap();
        assert!(io.read(&g).is_err());
    }

    #[test]
    fn crash_drops_unsynced_bytes() {
        let io = MemIo::new();
        let f = Path::new("/w.log");
        io.append(f, b"synced").unwrap();
        io.fsync(f).unwrap();
        io.append(f, b"-volatile").unwrap();
        io.crash();
        assert_eq!(io.read(f).unwrap(), b"synced");
        // A file never fsynced loses everything.
        let g = Path::new("/never-synced");
        io.write(g, b"gone").unwrap();
        io.crash();
        assert_eq!(io.read(g).unwrap(), b"");
        // Truncation caps the synced prefix too.
        io.write(f, b"abcdef").unwrap();
        io.fsync(f).unwrap();
        io.truncate(f, 3).unwrap();
        io.crash();
        assert_eq!(io.read(f).unwrap(), b"abc");
    }

    #[test]
    fn fault_io_tears_the_failing_write_and_stays_dead() {
        let io = FaultIo::new(MemIo::new(), 2);
        let f = Path::new("/w.log");
        io.append(f, b"aaaa").unwrap();
        io.append(f, b"bbbb").unwrap();
        // Third mutating op: torn — half the payload lands, then error.
        let err = io.append(f, b"cccc").unwrap_err();
        assert_eq!(err.kind(), INJECTED_FAULT);
        assert_eq!(io.inner().read(f).unwrap(), b"aaaabbbbcc");
        // Everything after the crash keeps failing.
        assert!(io.append(f, b"d").is_err());
        assert!(io.fsync(f).is_err());
        assert!(io.read(f).is_ok(), "reads survive for recovery");
    }

    #[test]
    fn atomic_write_replaces_or_preserves() {
        let io = MemIo::new();
        let dir = Path::new("/db");
        io.create_dir_all(dir).unwrap();
        let target = dir.join("MANIFEST");
        io.write(&target, b"old").unwrap();

        // Crash during the temp write: target untouched.
        let faulty = FaultIo::new(&io, 0);
        assert!(atomic_write_with(&faulty, &target, b"newer").is_err());
        assert_eq!(io.read(&target).unwrap(), b"old");

        // Crash after rename: replacement already complete.
        let faulty = FaultIo::new(&io, 3);
        assert!(atomic_write_with(&faulty, &target, b"newer").is_err());
        assert_eq!(io.read(&target).unwrap(), b"newer");

        // No faults: clean replacement, no temp file left behind.
        atomic_write_with(&io, &target, b"newest").unwrap();
        assert_eq!(io.read(&target).unwrap(), b"newest");
        assert_eq!(io.list(dir).unwrap().len(), 1);
    }
}
