//! Entity interning: the bijection between [`EntityValue`]s and dense
//! [`EntityId`]s.
//!
//! All facts, indexes, rules and queries refer to entities by id; the
//! interner is the single authority for the id ↔ value mapping. The special
//! entities of [`crate::special`] are interned eagerly at construction so
//! their ids are compile-time constants.

use std::sync::Arc;

use crate::pindex::PMap;
use crate::special;
use crate::value::{EntityId, EntityValue};

/// Values per copy-on-write chunk of the id → value table. A power of two
/// keeps `resolve` a shift and a mask; 1024 bounds the bytes a writer
/// re-copies when it appends to a chunk still shared with a snapshot.
const CHUNK: usize = 1024;

/// The id → value direction of the interner: a chunked vector whose chunks
/// are `Arc`-shared. Cloning is O(len / CHUNK) pointer bumps; pushing
/// copies at most one chunk (and only when a snapshot still shares it).
#[derive(Clone, Debug, Default)]
struct ChunkedValues {
    chunks: Vec<Arc<Vec<EntityValue>>>,
    len: usize,
}

impl ChunkedValues {
    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn get(&self, i: usize) -> Option<&EntityValue> {
        if i >= self.len {
            return None;
        }
        Some(&self.chunks[i / CHUNK][i % CHUNK])
    }

    fn push(&mut self, value: EntityValue) {
        if self.len.is_multiple_of(CHUNK) {
            self.chunks.push(Arc::new(Vec::with_capacity(CHUNK)));
        }
        let last = self.chunks.last_mut().expect("chunk just ensured");
        Arc::make_mut(last).push(value);
        self.len += 1;
    }

    fn iter(&self) -> impl Iterator<Item = &EntityValue> {
        self.chunks.iter().flat_map(|c| c.iter())
    }
}

/// An append-only entity table.
///
/// Interning the same value twice returns the same id; ids are dense and
/// never reused, so `Vec`-indexed side tables keyed by `EntityId` are cheap.
///
/// Both directions of the mapping are structurally shared, so `clone` (the
/// generation-publish path) costs O(len / CHUNK) reference-count bumps
/// rather than a copy of every interned string: the value table is chunked
/// behind `Arc`s and the reverse index is a persistent [`PMap`].
#[derive(Clone, Debug)]
pub struct Interner {
    values: ChunkedValues,
    ids: PMap<EntityValue, EntityId>,
}

impl Interner {
    /// Creates an interner with the special entities pre-interned at their
    /// reserved identifiers.
    pub fn new() -> Self {
        let mut interner = Interner { values: ChunkedValues::default(), ids: PMap::new() };
        for name in special::NAMES {
            interner.intern(EntityValue::symbol(name));
        }
        debug_assert_eq!(interner.len(), special::RESERVED as usize);
        interner
    }

    /// Interns a value, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, value: impl Into<EntityValue>) -> EntityId {
        let value = value.into();
        if let Some(&id) = self.ids.get(&value) {
            return id;
        }
        let id = EntityId(u32::try_from(self.values.len()).expect("entity table overflow"));
        self.values.push(value.clone());
        self.ids.insert(value, id);
        id
    }

    /// Interns a symbol by name.
    pub fn symbol(&mut self, name: impl AsRef<str>) -> EntityId {
        self.intern(EntityValue::symbol(name))
    }

    /// Looks up a value without interning it.
    pub fn lookup(&self, value: &EntityValue) -> Option<EntityId> {
        self.ids.get(value).copied()
    }

    /// Looks up a symbol by name without interning it.
    pub fn lookup_symbol(&self, name: &str) -> Option<EntityId> {
        self.ids.get(&EntityValue::symbol(name)).copied()
    }

    /// Resolves an id to its value.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: EntityId) -> &EntityValue {
        self.values.get(id.index()).expect("id interned by this interner")
    }

    /// Resolves an id if it is valid for this interner.
    pub fn try_resolve(&self, id: EntityId) -> Option<&EntityValue> {
        self.values.get(id.index())
    }

    /// Renders an entity for display, expanding composed-path entities into
    /// the dotted form the paper uses (`FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY`).
    pub fn display(&self, id: EntityId) -> String {
        match self.resolve(id) {
            EntityValue::Path(parts) => {
                let rendered: Vec<String> = parts.iter().map(|&p| self.display(p)).collect();
                rendered.join(".")
            }
            other => other.to_string(),
        }
    }

    /// Number of interned entities (including the reserved specials).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if only the reserved special entities are interned.
    pub fn is_empty(&self) -> bool {
        self.len() == special::RESERVED as usize
    }

    /// Iterates over all `(id, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, &EntityValue)> {
        self.values.iter().enumerate().map(|(i, v)| (EntityId(i as u32), v))
    }

    /// Iterates over all ids in id order.
    pub fn ids(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.values.len() as u32).map(EntityId)
    }

    /// True if `id` is valid for this interner.
    pub fn contains_id(&self, id: EntityId) -> bool {
        id.index() < self.values.len()
    }
}

impl Default for Interner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn specials_preinterned_at_reserved_ids() {
        let interner = Interner::new();
        assert_eq!(interner.lookup_symbol("gen"), Some(special::GEN));
        assert_eq!(interner.lookup_symbol("isa"), Some(special::ISA));
        assert_eq!(interner.lookup_symbol("TOP"), Some(special::TOP));
        assert_eq!(interner.lookup_symbol("<"), Some(special::LT));
        assert_eq!(interner.lookup_symbol(">="), Some(special::GE));
        assert_eq!(interner.len(), special::RESERVED as usize);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut interner = Interner::new();
        let a = interner.symbol("JOHN");
        let b = interner.symbol("JOHN");
        assert_eq!(a, b);
        assert_eq!(interner.resolve(a).as_symbol(), Some("JOHN"));
    }

    #[test]
    fn distinct_values_get_distinct_ids() {
        let mut interner = Interner::new();
        let a = interner.symbol("JOHN");
        let b = interner.symbol("JOHNNY");
        let c = interner.intern(25000i64);
        let d = interner.intern(2.5);
        assert_eq!([a, b, c, d].iter().collect::<std::collections::HashSet<_>>().len(), 4);
    }

    #[test]
    fn int_and_float_intern_separately() {
        let mut interner = Interner::new();
        let i = interner.intern(EntityValue::Int(2));
        let f = interner.intern(EntityValue::float(2.0));
        assert_ne!(i, f);
    }

    #[test]
    fn lookup_does_not_intern() {
        let interner = Interner::new();
        assert_eq!(interner.lookup_symbol("JOHN"), None);
        assert_eq!(interner.len(), special::RESERVED as usize);
    }

    #[test]
    fn display_expands_paths() {
        let mut interner = Interner::new();
        let fav = interner.symbol("FAVORITE-MUSIC");
        let pc9 = interner.symbol("PC#9-WAM");
        let comp = interner.symbol("COMPOSED-BY");
        let path = interner.intern(EntityValue::Path(Arc::from(vec![fav, pc9, comp].as_slice())));
        assert_eq!(interner.display(path), "FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY");
    }

    #[test]
    fn iter_in_id_order() {
        let mut interner = Interner::new();
        interner.symbol("A");
        interner.symbol("B");
        let ids: Vec<u32> = interner.iter().map(|(id, _)| id.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }
}
