//! Entity values: the universe `E` of a loosely structured database.
//!
//! The paper's universe of entities contains symbolic names (`JOHN`,
//! `EMPLOYEE`, `WORKS-FOR`), all numbers (`$25000` is modelled as the number
//! `25000`), and *composed relationship* entities produced by inference by
//! composition (§3.7), whose name records the path
//! `r1 · t1 · r2 · t2 · … · rk` (e.g. `FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY`).
//!
//! Values are interned (see [`crate::interner`]); everywhere else in the
//! system entities are referred to by a compact [`EntityId`].

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A compact identifier for an interned entity.
///
/// Identifiers are dense (assigned sequentially from zero), `Copy`, and
/// totally ordered, which lets facts be stored as plain `(u32, u32, u32)`
/// triples in ordered indexes. Identifiers below
/// [`crate::special::RESERVED`] are pre-assigned to the special entities of
/// the paper (`≺`, `∈`, `≈`, `⁺`, `⊥`, `Δ`, `∇` and the mathematical
/// comparators).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EntityId(pub u32);

impl EntityId {
    /// The raw index of this identifier.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The value of an entity in the universe `E`.
///
/// Equality and ordering are *identity* relations on values, suitable for
/// interning and deterministic iteration. Note that this is distinct from
/// the *mathematical* comparison used by the virtual relationships `<` and
/// `>` (see [`num_cmp`]): identity-wise `Int(2)` and `Float(2.0)` are two
/// different entities (they compare unequal and hash differently), while
/// mathematically they are equal.
#[derive(Clone, Debug)]
pub enum EntityValue {
    /// A symbolic entity such as `JOHN` or `WORKS-FOR`.
    Symbol(Arc<str>),
    /// An integer entity such as `25000`.
    Int(i64),
    /// A floating-point entity such as `2.6`. NaN is rejected at
    /// construction; `-0.0` is normalised to `0.0` so that equality is
    /// well-behaved.
    Float(f64),
    /// A composed relationship path `[r1, t1, r2, t2, …, rk]` (odd length,
    /// alternating relationship and intermediate entity), produced by
    /// inference by composition (§3.7).
    Path(Arc<[EntityId]>),
}

impl EntityValue {
    /// Creates a symbol value.
    pub fn symbol(name: impl AsRef<str>) -> Self {
        EntityValue::Symbol(Arc::from(name.as_ref()))
    }

    /// Creates a float value, normalising `-0.0` and rejecting NaN.
    ///
    /// # Panics
    /// Panics if `f` is NaN; databases must not contain entities without a
    /// well-defined identity.
    pub fn float(f: f64) -> Self {
        assert!(!f.is_nan(), "NaN cannot be an entity");
        EntityValue::Float(if f == 0.0 { 0.0 } else { f })
    }

    /// Returns the symbol name if this value is a symbol.
    pub fn as_symbol(&self) -> Option<&str> {
        match self {
            EntityValue::Symbol(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric magnitude if this value is a number.
    ///
    /// Integers outside the exactly-representable `f64` range lose
    /// precision here; exact integer comparison is handled separately by
    /// [`num_cmp`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            EntityValue::Int(i) => Some(*i as f64),
            EntityValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// True if this value is a number (integer or float).
    pub fn is_numeric(&self) -> bool {
        matches!(self, EntityValue::Int(_) | EntityValue::Float(_))
    }

    /// Returns the composition path if this value is a composed
    /// relationship.
    pub fn as_path(&self) -> Option<&[EntityId]> {
        match self {
            EntityValue::Path(p) => Some(p),
            _ => None,
        }
    }

    /// The number of composition operations recorded in a path entity
    /// (`None` for non-path values). A path `[r1, t1, r2]` was produced by
    /// one composition, `[r1, t1, r2, t2, r3]` by two, and so on.
    pub fn composition_ops(&self) -> Option<usize> {
        self.as_path().map(|p| p.len() / 2)
    }

    /// A small integer discriminant used for cross-variant ordering.
    fn tag(&self) -> u8 {
        match self {
            EntityValue::Symbol(_) => 0,
            EntityValue::Int(_) => 1,
            EntityValue::Float(_) => 2,
            EntityValue::Path(_) => 3,
        }
    }
}

impl PartialEq for EntityValue {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (EntityValue::Symbol(a), EntityValue::Symbol(b)) => a == b,
            (EntityValue::Int(a), EntityValue::Int(b)) => a == b,
            (EntityValue::Float(a), EntityValue::Float(b)) => a.to_bits() == b.to_bits(),
            (EntityValue::Path(a), EntityValue::Path(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for EntityValue {}

impl Hash for EntityValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.tag().hash(state);
        match self {
            EntityValue::Symbol(s) => s.hash(state),
            EntityValue::Int(i) => i.hash(state),
            EntityValue::Float(f) => f.to_bits().hash(state),
            EntityValue::Path(p) => p.hash(state),
        }
    }
}

impl PartialOrd for EntityValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EntityValue {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (EntityValue::Symbol(a), EntityValue::Symbol(b)) => a.cmp(b),
            (EntityValue::Int(a), EntityValue::Int(b)) => a.cmp(b),
            (EntityValue::Float(a), EntityValue::Float(b)) => {
                // Total order on non-NaN floats.
                a.partial_cmp(b).expect("NaN rejected at construction")
            }
            (EntityValue::Path(a), EntityValue::Path(b)) => a.cmp(b),
            (a, b) => a.tag().cmp(&b.tag()),
        }
    }
}

impl From<&str> for EntityValue {
    fn from(s: &str) -> Self {
        EntityValue::symbol(s)
    }
}

impl From<String> for EntityValue {
    fn from(s: String) -> Self {
        EntityValue::Symbol(Arc::from(s.as_str()))
    }
}

impl From<i64> for EntityValue {
    fn from(i: i64) -> Self {
        EntityValue::Int(i)
    }
}

impl From<f64> for EntityValue {
    fn from(f: f64) -> Self {
        EntityValue::float(f)
    }
}

impl fmt::Display for EntityValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntityValue::Symbol(s) => write!(f, "{s}"),
            EntityValue::Int(i) => write!(f, "{i}"),
            EntityValue::Float(x) => write!(f, "{x}"),
            EntityValue::Path(p) => {
                // Path display without an interner can only show raw ids;
                // `Interner::display_path` renders names.
                let parts: Vec<String> = p.iter().map(|e| e.to_string()).collect();
                write!(f, "{}", parts.join("."))
            }
        }
    }
}

/// Mathematical comparison between two entity values (§3.6).
///
/// Returns `Some(ordering)` when both values are numbers; integer pairs are
/// compared exactly, mixed pairs via `f64`. Non-numeric values are not
/// mathematically comparable and yield `None` — the virtual relationships
/// `<` and `>` simply do not hold between them (only `=`/`≠` apply to all
/// entities).
pub fn num_cmp(a: &EntityValue, b: &EntityValue) -> Option<Ordering> {
    match (a, b) {
        (EntityValue::Int(x), EntityValue::Int(y)) => Some(x.cmp(y)),
        _ => {
            let (x, y) = (a.as_f64()?, b.as_f64()?);
            x.partial_cmp(&y)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &EntityValue) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn symbol_equality_and_hash() {
        let a = EntityValue::symbol("JOHN");
        let b = EntityValue::symbol("JOHN");
        let c = EntityValue::symbol("JOHNNY");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn int_and_float_are_distinct_entities() {
        assert_ne!(EntityValue::Int(2), EntityValue::float(2.0));
    }

    #[test]
    fn negative_zero_normalised() {
        assert_eq!(EntityValue::float(-0.0), EntityValue::float(0.0));
        assert_eq!(hash_of(&EntityValue::float(-0.0)), hash_of(&EntityValue::float(0.0)));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = EntityValue::float(f64::NAN);
    }

    #[test]
    fn cross_variant_ordering_is_total_and_consistent() {
        let vals = [
            EntityValue::symbol("A"),
            EntityValue::symbol("B"),
            EntityValue::Int(-1),
            EntityValue::Int(7),
            EntityValue::float(0.5),
            EntityValue::Path(Arc::from(vec![EntityId(1), EntityId(2), EntityId(3)].as_slice())),
        ];
        for a in &vals {
            assert_eq!(a.cmp(a), Ordering::Equal);
            for b in &vals {
                assert_eq!(a.cmp(b), b.cmp(a).reverse());
            }
        }
    }

    #[test]
    fn num_cmp_exact_integers() {
        // Large integers that collide when rounded to f64 still compare
        // exactly as integers.
        let a = EntityValue::Int(9_007_199_254_740_993);
        let b = EntityValue::Int(9_007_199_254_740_992);
        assert_eq!(num_cmp(&a, &b), Some(Ordering::Greater));
    }

    #[test]
    fn num_cmp_mixed() {
        assert_eq!(num_cmp(&EntityValue::Int(2), &EntityValue::float(2.5)), Some(Ordering::Less));
        assert_eq!(num_cmp(&EntityValue::Int(2), &EntityValue::float(2.0)), Some(Ordering::Equal));
        assert_eq!(num_cmp(&EntityValue::symbol("X"), &EntityValue::Int(1)), None);
    }

    #[test]
    fn composition_ops_counts_operations() {
        let one =
            EntityValue::Path(Arc::from(vec![EntityId(1), EntityId(2), EntityId(3)].as_slice()));
        let two = EntityValue::Path(Arc::from(
            vec![EntityId(1), EntityId(2), EntityId(3), EntityId(4), EntityId(5)].as_slice(),
        ));
        assert_eq!(one.composition_ops(), Some(1));
        assert_eq!(two.composition_ops(), Some(2));
        assert_eq!(EntityValue::Int(1).composition_ops(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(EntityValue::symbol("JOHN").to_string(), "JOHN");
        assert_eq!(EntityValue::Int(25000).to_string(), "25000");
        assert_eq!(EntityValue::float(2.5).to_string(), "2.5");
    }
}
