//! A plain-text fact format: one fact per line.
//!
//! A loosely structured database is "a heap of facts" built "one by one"
//! (§2); the natural interchange format is a line-oriented triple file:
//!
//! ```text
//! # The §3.1 examples.
//! EMPLOYEE WORKS-FOR DEPARTMENT
//! MANAGER gen EMPLOYEE
//! JOHN EARNS 25000
//! STUDENT-1 GPA 2.5
//! "San Francisco" KNOWN-AS "The City"
//! ```
//!
//! Tokens are whitespace-separated; `#` starts a comment; names with
//! spaces (or starting like numbers) are double-quoted with `\"` and `\\`
//! escapes; integers and decimals become number entities. Dumping and
//! re-loading a store is the identity on its facts (path entities, being
//! derived, are skipped and reported).

use std::fmt;

use crate::store::FactStore;
use crate::value::EntityValue;

/// A parse error with line information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextError {}

/// Parses a fact file into value triples.
pub fn parse_facts(input: &str) -> Result<Vec<(EntityValue, EntityValue, EntityValue)>, TextError> {
    let mut out = Vec::new();
    for (i, raw_line) in input.lines().enumerate() {
        let line_no = i + 1;
        let tokens = tokenize(raw_line, line_no)?;
        match tokens.len() {
            0 => continue,
            3 => {
                let mut it = tokens.into_iter();
                out.push((
                    it.next().expect("len 3"),
                    it.next().expect("len 3"),
                    it.next().expect("len 3"),
                ));
            }
            n => {
                return Err(TextError {
                    line: line_no,
                    message: format!("expected 3 tokens (source relationship target), found {n}"),
                })
            }
        }
    }
    Ok(out)
}

/// Loads a fact file into a store; returns the number of facts added
/// (duplicates within the file or store count once).
pub fn load_text(store: &mut FactStore, input: &str) -> Result<usize, TextError> {
    let before = store.len();
    for (s, r, t) in parse_facts(input)? {
        store.add(s, r, t);
    }
    Ok(store.len() - before)
}

/// Reads a fact file from disk into a store.
pub fn load_file(
    store: &mut FactStore,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<usize> {
    let input = std::fs::read_to_string(path)?;
    load_text(store, &input)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Dumps every storable fact as text, in deterministic store order.
/// Facts mentioning derived path entities are skipped (they are
/// re-derivable); the second tuple element counts them.
pub fn dump_text(store: &FactStore) -> (String, usize) {
    let mut out = String::new();
    let mut skipped = 0;
    for f in store.iter() {
        let values = [store.value(f.s), store.value(f.r), store.value(f.t)];
        if values.iter().any(|v| v.as_path().is_some()) {
            skipped += 1;
            continue;
        }
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&render_value(v));
        }
        out.push('\n');
    }
    (out, skipped)
}

/// Writes the fact file to disk; returns the number of skipped
/// path-entity facts.
pub fn dump_file(store: &FactStore, path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
    let (text, skipped) = dump_text(store);
    crate::io::atomic_write(path, text.as_bytes())?;
    Ok(skipped)
}

fn render_value(v: &EntityValue) -> String {
    match v {
        EntityValue::Int(i) => i.to_string(),
        EntityValue::Float(f) => {
            let s = f.to_string();
            // Ensure floats keep a decimal point so they round-trip as
            // floats, not integers.
            if s.contains('.') || s.contains('e') || s.contains("inf") {
                s
            } else {
                format!("{s}.0")
            }
        }
        EntityValue::Symbol(name) => {
            let plain = !name.is_empty()
                && !name.contains(|c: char| c.is_whitespace() || c == '"' || c == '#')
                && parse_number(name).is_none();
            if plain {
                name.to_string()
            } else {
                let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
                format!("\"{escaped}\"")
            }
        }
        EntityValue::Path(_) => unreachable!("paths filtered by caller"),
    }
}

fn parse_number(token: &str) -> Option<EntityValue> {
    if let Ok(i) = token.parse::<i64>() {
        return Some(EntityValue::Int(i));
    }
    if let Ok(f) = token.parse::<f64>() {
        if f.is_finite() {
            return Some(EntityValue::float(f));
        }
    }
    None
}

fn tokenize(line: &str, line_no: usize) -> Result<Vec<EntityValue>, TextError> {
    let mut out = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        // Skip whitespace.
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        match chars.peek() {
            None => break,
            Some('#') => break, // comment to end of line
            Some('"') => {
                chars.next();
                let mut name = String::new();
                loop {
                    match chars.next() {
                        None => {
                            return Err(TextError {
                                line: line_no,
                                message: "unterminated quoted name".into(),
                            })
                        }
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some(c @ ('"' | '\\')) => name.push(c),
                            other => {
                                return Err(TextError {
                                    line: line_no,
                                    message: format!("bad escape {other:?}"),
                                })
                            }
                        },
                        Some(c) => name.push(c),
                    }
                }
                out.push(EntityValue::symbol(name));
            }
            Some(_) => {
                let mut token = String::new();
                while chars.peek().is_some_and(|c| !c.is_whitespace()) {
                    let c = *chars.peek().expect("peeked");
                    if c == '#' {
                        break;
                    }
                    token.push(c);
                    chars.next();
                }
                out.push(parse_number(&token).unwrap_or_else(|| EntityValue::symbol(&token)));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::EntityValue as V;

    #[test]
    fn parses_symbols_numbers_comments() {
        let input = "\
# a comment
EMPLOYEE WORKS-FOR DEPARTMENT
JOHN EARNS 25000   # trailing comment

STUDENT-1 GPA 2.5
";
        let facts = parse_facts(input).unwrap();
        assert_eq!(facts.len(), 3);
        assert_eq!(facts[1].2, V::Int(25000));
        assert_eq!(facts[2].2, V::float(2.5));
    }

    #[test]
    fn quoted_names_with_spaces_and_escapes() {
        let input = r#""San Francisco" KNOWN-AS "The \"City\"""#;
        let facts = parse_facts(input).unwrap();
        assert_eq!(facts[0].0, V::symbol("San Francisco"));
        assert_eq!(facts[0].2, V::symbol("The \"City\""));
        // Quoting forces symbol-hood even for digits.
        let facts = parse_facts(r#"X IS "42""#).unwrap();
        assert_eq!(facts[0].2, V::symbol("42"));
    }

    #[test]
    fn errors_are_positioned() {
        let err = parse_facts("A B\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("3 tokens"));
        let err = parse_facts("OK OK OK\nA B C D\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = parse_facts("A B \"unterminated\n").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn load_dump_roundtrip() {
        let mut store = FactStore::new();
        let input = "\
JOHN EARNS 25000
JOHN isa EMPLOYEE
STUDENT-1 GPA 2.5
\"odd name\" R \"an # inside\"
A R -7
";
        assert_eq!(load_text(&mut store, input).unwrap(), 5);
        let (dumped, skipped) = dump_text(&store);
        assert_eq!(skipped, 0);
        let mut store2 = FactStore::new();
        load_text(&mut store2, &dumped).unwrap();
        let a: Vec<String> = store.iter().map(|f| store.display_fact(&f)).collect();
        let b: Vec<String> = store2.iter().map(|f| store2.display_fact(&f)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn floats_roundtrip_as_floats() {
        let mut store = FactStore::new();
        load_text(&mut store, "X IS 2.0").unwrap();
        let (dumped, _) = dump_text(&store);
        assert!(dumped.contains("2.0"), "{dumped}");
        let mut store2 = FactStore::new();
        load_text(&mut store2, &dumped).unwrap();
        assert!(store2.lookup(&V::float(2.0)).is_some());
        assert!(store2.lookup(&V::Int(2)).is_none());
    }

    #[test]
    fn numeric_looking_symbols_are_quoted_on_dump() {
        let mut store = FactStore::new();
        store.add(EntityValue::symbol("42"), EntityValue::symbol("R"), EntityValue::symbol("x"));
        let (dumped, _) = dump_text(&store);
        assert!(dumped.starts_with("\"42\""), "{dumped}");
        let mut store2 = FactStore::new();
        load_text(&mut store2, &dumped).unwrap();
        assert!(store2.lookup(&EntityValue::symbol("42")).is_some());
    }

    #[test]
    fn path_facts_skipped_on_dump() {
        let mut store = FactStore::new();
        let a = store.entity("A");
        let r = store.entity("R");
        let b = store.entity("B");
        let path = store.entity(EntityValue::Path(vec![r, a, r].into()));
        store.insert(crate::fact::Fact::new(a, path, b));
        store.insert(crate::fact::Fact::new(a, r, b));
        let (dumped, skipped) = dump_text(&store);
        assert_eq!(skipped, 1);
        assert_eq!(dumped.lines().count(), 1);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("loosedb-text-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("facts.txt");
        let mut store = FactStore::new();
        store.add("A", "R", "B");
        dump_file(&store, &path).unwrap();
        let mut store2 = FactStore::new();
        assert_eq!(load_file(&mut store2, &path).unwrap(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
