//! The special entities of the paper, pre-interned at fixed identifiers.
//!
//! The paper treats its structural vocabulary — generalization `≺` (§2.3),
//! membership `∈` (§2.3), synonym `≈` (§3.3), inversion `⁺` (§3.4),
//! contradiction `⊥` (§3.5), the hierarchy bounds `Δ`/`∇` (§2.3), and the
//! mathematical comparators (§3.6) — as *ordinary entities*: they may appear
//! in any position of a fact. We reserve the first [`RESERVED`] identifiers
//! for them so they can be referred to as constants throughout the system.
//!
//! ASCII spellings are used for the textual syntax: `gen` for `≺`, `isa`
//! for `∈`, `syn` for `≈`, `inv` for `⁺`, `contra` for `⊥`, `TOP` for `Δ`
//! and `BOT` for `∇`.

use crate::value::EntityId;

/// Generalization `≺`: `(EMPLOYEE, gen, PERSON)` — an individual,
/// reflexive, transitive relationship imposing a partial hierarchy.
pub const GEN: EntityId = EntityId(0);
/// Membership `∈`: `(JOHN, isa, EMPLOYEE)` — a class relationship.
pub const ISA: EntityId = EntityId(1);
/// Synonym `≈`: `(JOHN, syn, JOHNNY)`, defined as mutual generalization.
pub const SYN: EntityId = EntityId(2);
/// Inversion `⁺`: `(TEACHES, inv, TAUGHT-BY)`; `(inv, inv, inv)` holds.
pub const INV: EntityId = EntityId(3);
/// Contradiction `⊥`: `(LOVES, contra, HATES)`; symmetric.
pub const CONTRA: EntityId = EntityId(4);
/// The most abstract entity `Δ`: `(E, gen, TOP)` for every entity `E`.
pub const TOP: EntityId = EntityId(5);
/// The most specific entity `∇`: `(BOT, gen, E)` for every entity `E`.
pub const BOT: EntityId = EntityId(6);
/// Virtual mathematical `<`.
pub const LT: EntityId = EntityId(7);
/// Virtual mathematical `>`.
pub const GT: EntityId = EntityId(8);
/// Virtual `=` (identity, defined for *all* entities, §3.6).
pub const EQ: EntityId = EntityId(9);
/// Virtual `≠` (defined for all entities).
pub const NE: EntityId = EntityId(10);
/// Virtual `≤` (derived comparator, §3.6 "may be defined through simple
/// inference rules"; we provide it natively).
pub const LE: EntityId = EntityId(11);
/// Virtual `≥`.
pub const GE: EntityId = EntityId(12);

/// Number of reserved identifiers; ordinary entities start here.
pub const RESERVED: u32 = 13;

/// The ASCII names of the special entities, in identifier order.
pub const NAMES: [&str; RESERVED as usize] =
    ["gen", "isa", "syn", "inv", "contra", "TOP", "BOT", "<", ">", "=", "!=", "<=", ">="];

/// True if `id` denotes one of the virtual mathematical comparators, whose
/// extension is never stored (§3.6).
#[inline]
pub fn is_math(id: EntityId) -> bool {
    matches!(id, LT | GT | EQ | NE | LE | GE)
}

/// True if `id` is any reserved special entity.
#[inline]
pub fn is_special(id: EntityId) -> bool {
    id.0 < RESERVED
}

/// The display glyph the paper uses for a special entity, if any.
pub fn glyph(id: EntityId) -> Option<&'static str> {
    Some(match id {
        GEN => "≺",
        ISA => "∈",
        SYN => "≈",
        INV => "⁺",
        CONTRA => "⊥",
        TOP => "Δ",
        BOT => "∇",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_align_with_ids() {
        assert_eq!(NAMES[GEN.index()], "gen");
        assert_eq!(NAMES[ISA.index()], "isa");
        assert_eq!(NAMES[SYN.index()], "syn");
        assert_eq!(NAMES[INV.index()], "inv");
        assert_eq!(NAMES[CONTRA.index()], "contra");
        assert_eq!(NAMES[TOP.index()], "TOP");
        assert_eq!(NAMES[BOT.index()], "BOT");
        assert_eq!(NAMES[LT.index()], "<");
        assert_eq!(NAMES[GE.index()], ">=");
        assert_eq!(NAMES.len(), RESERVED as usize);
    }

    #[test]
    fn math_classification() {
        assert!(is_math(LT) && is_math(GE) && is_math(EQ) && is_math(NE));
        assert!(!is_math(GEN) && !is_math(ISA) && !is_math(TOP));
    }

    #[test]
    fn special_classification() {
        assert!(is_special(GEN));
        assert!(is_special(EntityId(RESERVED - 1)));
        assert!(!is_special(EntityId(RESERVED)));
    }

    #[test]
    fn glyphs() {
        assert_eq!(glyph(GEN), Some("≺"));
        assert_eq!(glyph(LT), None);
    }
}
