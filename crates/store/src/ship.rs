//! WAL shipping: tailing a leader's log segments for replication.
//!
//! A durable database directory (see `loosedb-engine`'s journaling
//! layer) is already a complete replication feed: the checksummed
//! manifest names the live snapshot generation, and each generation's
//! WAL holds self-describing, CRC32-framed operations
//! ([`crate::log`]). This module adds the reader side:
//!
//! * [`Manifest`] — the checksummed generation pointer at the head of a
//!   journal directory (moved here from the engine so a follower can
//!   read a leader directory without engine types).
//! * [`ShipCursor`] — a resumable `(segment, offset, epoch)` position in
//!   the leader's log stream, with a checksummed file encoding.
//! * [`FrameStream`] — a tailing reader that decodes intact frames from
//!   the cursor onward, re-verifying every CRC, waiting on a torn live
//!   tail, advancing through segment rotation, and distinguishing
//!   mid-stream corruption ([`ShipError::CorruptFrame`]) from a segment
//!   the leader has already retired ([`ShipError::SegmentRetired`]).
//!
//! Every read goes through [`StorageIo`], so fault-injection tests can
//! kill a follower at any I/O point and drive recovery through the same
//! handle.

use std::io;
use std::path::{Path, PathBuf};

use crate::codec::CodecError;
use crate::io::{crc32, StorageIo};
use crate::log::{Frames, LogOp};

/// File name of the manifest inside a journal directory.
pub const MANIFEST_NAME: &str = "MANIFEST";

const MANIFEST_MAGIC: &[u8; 4] = b"LSDM";
const MANIFEST_VERSION: u16 = 1;
const MANIFEST_LEN: usize = 4 + 2 + 8 + 8 + 4 + 4;

const CURSOR_MAGIC: &[u8; 4] = b"LSRC";
const CURSOR_VERSION: u16 = 1;
const CURSOR_LEN: usize = 4 + 2 + 8 + 8 + 8 + 4;

/// File name of the snapshot of a generation.
pub fn snap_name(generation: u64) -> String {
    format!("snap-{generation:016}.lsdf")
}

/// File name of the write-ahead log of a generation.
pub fn wal_name(generation: u64) -> String {
    format!("wal-{generation:016}.log")
}

/// Parses `prefix<16 digits>suffix` back to a generation number.
pub fn parse_generation(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let digits = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if digits.len() == 16 && digits.bytes().all(|b| b.is_ascii_digit()) {
        digits.parse().ok()
    } else {
        None
    }
}

/// The checksummed manifest at the head of a journal directory: which
/// generation is live, and the length and CRC32 of its snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// The live snapshot generation.
    pub generation: u64,
    /// Byte length of the live snapshot image.
    pub snapshot_len: u64,
    /// CRC32 of the live snapshot image.
    pub snapshot_crc: u32,
}

impl Manifest {
    /// Encodes the manifest with its trailing CRC32.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MANIFEST_LEN);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.snapshot_len.to_le_bytes());
        out.extend_from_slice(&self.snapshot_crc.to_le_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a manifest; `None` if it is damaged in any way.
    pub fn decode(data: &[u8]) -> Option<Manifest> {
        if data.len() != MANIFEST_LEN || &data[0..4] != MANIFEST_MAGIC {
            return None;
        }
        let stored = u32::from_le_bytes(data[MANIFEST_LEN - 4..].try_into().ok()?);
        if crc32(&data[..MANIFEST_LEN - 4]) != stored {
            return None;
        }
        let version = u16::from_le_bytes(data[4..6].try_into().ok()?);
        if version != MANIFEST_VERSION {
            return None;
        }
        Some(Manifest {
            generation: u64::from_le_bytes(data[6..14].try_into().ok()?),
            snapshot_len: u64::from_le_bytes(data[14..22].try_into().ok()?),
            snapshot_crc: u32::from_le_bytes(data[22..26].try_into().ok()?),
        })
    }

    /// Reads and decodes the manifest of a journal directory; `None` if
    /// it is missing or damaged.
    pub fn read_from(io: &dyn StorageIo, dir: &Path) -> Option<Manifest> {
        let path = dir.join(MANIFEST_NAME);
        if !io.exists(&path) {
            return None;
        }
        Manifest::decode(&io.read(&path).ok()?)
    }
}

/// A resumable position in a leader's log stream.
///
/// `segment` is the leader generation whose WAL is being consumed,
/// `offset` the byte position inside it (always a frame boundary), and
/// `epoch` the count of operations applied since the follower's
/// bootstrap — the follower's logical clock across segment rotations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShipCursor {
    /// Leader generation whose WAL the cursor points into.
    pub segment: u64,
    /// Byte offset of the next unconsumed frame in that WAL.
    pub offset: u64,
    /// Operations applied since bootstrap (the follower's logical clock).
    pub epoch: u64,
}

impl ShipCursor {
    /// The cursor at the start of a segment, carrying an epoch forward.
    pub fn start_of(segment: u64, epoch: u64) -> Self {
        ShipCursor { segment, offset: 0, epoch }
    }

    /// Encodes the cursor with its trailing CRC32 (for an atomic cursor
    /// file).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CURSOR_LEN);
        out.extend_from_slice(CURSOR_MAGIC);
        out.extend_from_slice(&CURSOR_VERSION.to_le_bytes());
        out.extend_from_slice(&self.segment.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a cursor; `None` if it is damaged in any way.
    pub fn decode(data: &[u8]) -> Option<ShipCursor> {
        if data.len() != CURSOR_LEN || &data[0..4] != CURSOR_MAGIC {
            return None;
        }
        let stored = u32::from_le_bytes(data[CURSOR_LEN - 4..].try_into().ok()?);
        if crc32(&data[..CURSOR_LEN - 4]) != stored {
            return None;
        }
        let version = u16::from_le_bytes(data[4..6].try_into().ok()?);
        if version != CURSOR_VERSION {
            return None;
        }
        Some(ShipCursor {
            segment: u64::from_le_bytes(data[6..14].try_into().ok()?),
            offset: u64::from_le_bytes(data[14..22].try_into().ok()?),
            epoch: u64::from_le_bytes(data[22..30].try_into().ok()?),
        })
    }
}

/// Why a [`FrameStream::poll`] could not make progress.
#[derive(Debug)]
pub enum ShipError {
    /// Reading the leader directory failed.
    Io(io::Error),
    /// The leader directory has no decodable manifest (not a journal
    /// directory, or the leader is mid-bootstrap).
    NoManifest,
    /// A frame failed its checksum (or decoded to garbage) in a place
    /// that cannot be a live torn tail: bit rot, or follower/leader
    /// divergence after a leader crash. The caller should re-read with
    /// bounded retry and re-bootstrap if the damage persists.
    CorruptFrame {
        /// Segment holding the damaged frame.
        segment: u64,
        /// Byte offset of the damaged frame.
        offset: u64,
        /// What the frame decoder rejected.
        source: CodecError,
    },
    /// The cursor's segment is gone and the leader has moved past it
    /// (checkpoint retirement outran the follower, or the leader was
    /// reset). The follower must re-bootstrap from the newest snapshot.
    SegmentRetired {
        /// The segment the cursor was consuming.
        segment: u64,
        /// The leader's live generation.
        live: u64,
    },
}

impl std::fmt::Display for ShipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShipError::Io(e) => write!(f, "shipping I/O failed: {e}"),
            ShipError::NoManifest => write!(f, "leader directory has no decodable manifest"),
            ShipError::CorruptFrame { segment, offset, source } => {
                write!(f, "corrupt frame in segment {segment} at offset {offset}: {source}")
            }
            ShipError::SegmentRetired { segment, live } => {
                write!(f, "segment {segment} retired by the leader (live generation {live})")
            }
        }
    }
}

impl std::error::Error for ShipError {}

impl From<io::Error> for ShipError {
    fn from(e: io::Error) -> Self {
        ShipError::Io(e)
    }
}

/// One batch of shipped operations from [`FrameStream::poll`].
#[derive(Debug, Default)]
pub struct ShipBatch {
    /// Decoded operations, in log order.
    pub ops: Vec<LogOp>,
    /// The raw frame bytes the operations were decoded from — exactly
    /// the bytes between the previous and new cursor offsets, so a
    /// follower can mirror them verbatim into its own log.
    pub bytes: Vec<u8>,
    /// True if the cursor advanced to the start of the next segment
    /// after consuming these operations (the old segment was read to
    /// its final end).
    pub rotated: bool,
    /// The leader's live generation at poll time.
    pub live_segment: u64,
    /// Unconsumed bytes remaining in the polled segment's WAL — the
    /// follower's byte lag within its current segment.
    pub lag_bytes: u64,
}

/// A tailing reader over a leader's WAL segments.
///
/// `poll` reads from the cursor onward and returns every intact frame
/// (up to a batch limit). A torn frame at the tail of the *live*
/// segment is not an error — the leader may still be appending — the
/// stream simply stops before it and will retry on the next poll. A
/// checksum failure anywhere else is [`ShipError::CorruptFrame`]; a
/// missing segment the leader has moved past is
/// [`ShipError::SegmentRetired`].
#[derive(Debug)]
pub struct FrameStream<I> {
    io: I,
    dir: PathBuf,
    cursor: ShipCursor,
}

impl<I: StorageIo> FrameStream<I> {
    /// Opens a stream over the journal directory `dir`, resuming from
    /// `cursor`.
    pub fn new(io: I, dir: impl Into<PathBuf>, cursor: ShipCursor) -> Self {
        FrameStream { io, dir: dir.into(), cursor }
    }

    /// The current cursor (resumable across process restarts).
    pub fn cursor(&self) -> ShipCursor {
        self.cursor
    }

    /// Repositions the stream (after a re-bootstrap).
    pub fn seek(&mut self, cursor: ShipCursor) {
        self.cursor = cursor;
    }

    /// The leader directory being tailed.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Reads the next batch of at most `max_ops` operations.
    ///
    /// An empty batch with `rotated: false` means the follower is caught
    /// up (or the live segment's tail is torn mid-append — indistinguishable
    /// from "caught up" until the leader finishes the append).
    pub fn poll(&mut self, max_ops: usize) -> Result<ShipBatch, ShipError> {
        // A leader writes its first manifest at its first checkpoint, so
        // a missing manifest means a live generation 0; a manifest that
        // exists but does not decode is damage.
        let live = match Manifest::read_from(&self.io, &self.dir) {
            Some(m) => m.generation,
            None if !self.io.exists(&self.dir.join(MANIFEST_NAME)) => 0,
            None => return Err(ShipError::NoManifest),
        };
        if self.cursor.segment > live {
            // The leader regressed below our cursor (restored from an
            // older backup, or reset). Only a re-bootstrap can help.
            return Err(ShipError::SegmentRetired { segment: self.cursor.segment, live });
        }
        let wal = self.dir.join(wal_name(self.cursor.segment));
        let data = match self.io.read(&wal) {
            Ok(data) => data,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                if live > self.cursor.segment {
                    return Err(ShipError::SegmentRetired { segment: self.cursor.segment, live });
                }
                // The live generation's WAL is created lazily on the
                // first append (generation 0 before any write): empty.
                return Ok(ShipBatch { live_segment: live, ..ShipBatch::default() });
            }
            Err(e) => return Err(e.into()),
        };
        let start = self.cursor.offset as usize;
        if start > data.len() {
            // The file shrank below our cursor: the leader crashed and
            // truncated a tail we had already consumed (divergence).
            return Err(ShipError::SegmentRetired { segment: self.cursor.segment, live });
        }

        let mut frames = Frames::new(&data[start..]);
        let mut ops = Vec::new();
        let mut damage = None;
        for op in &mut frames {
            match op {
                Ok(op) => {
                    ops.push(op);
                    if ops.len() >= max_ops {
                        break;
                    }
                }
                Err(e) => {
                    damage = Some(e);
                    break;
                }
            }
        }
        let consumed = frames.valid_bytes();
        let new_offset = start + consumed;

        if let Some(e) = &damage {
            // A short frame at the tail of the live segment is the
            // leader's append in flight: wait, don't error. Anything
            // else — a checksum or decode failure, or a short frame in
            // a segment the leader has already finished — will never
            // heal by waiting.
            let in_flight = matches!(e, CodecError::UnexpectedEof) && live == self.cursor.segment;
            if !in_flight && ops.is_empty() {
                return Err(ShipError::CorruptFrame {
                    segment: self.cursor.segment,
                    offset: new_offset as u64,
                    source: damage.expect("just matched"),
                });
            }
            // With intact frames in hand, deliver them first; the
            // damage (if real) resurfaces on the next poll.
        }

        let rotated = damage.is_none()
            && new_offset == data.len()
            && live > self.cursor.segment
            && ops.len() < max_ops;
        self.cursor.epoch += ops.len() as u64;
        if rotated {
            self.cursor = ShipCursor::start_of(self.cursor.segment + 1, self.cursor.epoch);
        } else {
            self.cursor.offset = new_offset as u64;
        }
        Ok(ShipBatch {
            bytes: data[start..new_offset].to_vec(),
            ops,
            rotated,
            live_segment: live,
            lag_bytes: (data.len() - new_offset) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemIo;
    use crate::log::{encode_frame, FactLog};
    use std::sync::Arc;

    fn dir() -> PathBuf {
        PathBuf::from("/leader")
    }

    fn write_manifest(io: &MemIo, generation: u64) {
        let m = Manifest { generation, snapshot_len: 0, snapshot_crc: 0 };
        io.write(&dir().join(MANIFEST_NAME), &m.encode()).unwrap();
    }

    fn append_ops(io: &MemIo, generation: u64, names: &[&str]) {
        let mut log = FactLog::new();
        for n in names {
            log.insert(*n, "R", "B");
        }
        io.append(&dir().join(wal_name(generation)), &log.bytes()).unwrap();
    }

    #[test]
    fn manifest_roundtrip_and_rejection() {
        let m = Manifest { generation: 7, snapshot_len: 1234, snapshot_crc: 0xDEAD_BEEF };
        let bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes), Some(m));
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert_eq!(Manifest::decode(&bad), None, "flip at {i}");
        }
        assert_eq!(Manifest::decode(&bytes[..bytes.len() - 1]), None);
        assert_eq!(Manifest::decode(&[]), None);
    }

    #[test]
    fn cursor_roundtrip_and_rejection() {
        let c = ShipCursor { segment: 3, offset: 1024, epoch: 99 };
        let bytes = c.encode();
        assert_eq!(ShipCursor::decode(&bytes), Some(c));
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x04;
            assert_eq!(ShipCursor::decode(&bad), None, "flip at {i}");
        }
        assert_eq!(ShipCursor::decode(&[]), None);
    }

    #[test]
    fn poll_reads_frames_and_advances() {
        let io = Arc::new(MemIo::new());
        write_manifest(&io, 0);
        append_ops(&io, 0, &["A", "B", "C"]);
        let mut stream = FrameStream::new(Arc::clone(&io), dir(), ShipCursor::default());
        let batch = stream.poll(2).unwrap();
        assert_eq!(batch.ops.len(), 2);
        assert!(!batch.rotated);
        assert!(batch.lag_bytes > 0);
        let batch = stream.poll(16).unwrap();
        assert_eq!(batch.ops.len(), 1);
        assert_eq!(batch.lag_bytes, 0);
        assert_eq!(stream.cursor().epoch, 3);
        // Caught up: polls return empty batches.
        assert!(stream.poll(16).unwrap().ops.is_empty());
        // The raw batch bytes are the verbatim frames.
        append_ops(&io, 0, &["D"]);
        let batch = stream.poll(16).unwrap();
        assert_eq!(batch.bytes, encode_frame(&batch.ops[0].clone()));
    }

    #[test]
    fn torn_live_tail_waits_then_delivers() {
        let io = Arc::new(MemIo::new());
        write_manifest(&io, 0);
        let frame = {
            let mut log = FactLog::new();
            log.insert("A", "R", "B");
            log.bytes().to_vec()
        };
        let wal = dir().join(wal_name(0));
        // Half a frame: an append in flight.
        io.append(&wal, &frame[..frame.len() / 2]).unwrap();
        let mut stream = FrameStream::new(Arc::clone(&io), dir(), ShipCursor::default());
        let batch = stream.poll(16).unwrap();
        assert!(batch.ops.is_empty());
        assert_eq!(stream.cursor().offset, 0);
        // The append completes; the next poll sees the whole frame.
        io.append(&wal, &frame[frame.len() / 2..]).unwrap();
        let batch = stream.poll(16).unwrap();
        assert_eq!(batch.ops.len(), 1);
    }

    #[test]
    fn corrupt_frame_is_rejected_at_the_checksum() {
        let io = Arc::new(MemIo::new());
        write_manifest(&io, 0);
        append_ops(&io, 0, &["A", "B"]);
        let wal = dir().join(wal_name(0));
        let mut data = io.read(&wal).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0xFF; // bit rot in the second frame's payload
        io.write(&wal, &data).unwrap();
        let mut stream = FrameStream::new(Arc::clone(&io), dir(), ShipCursor::default());
        // First poll delivers the intact prefix.
        let batch = stream.poll(16).unwrap();
        assert_eq!(batch.ops.len(), 1);
        // The damage is now at the cursor: a hard error, not a wait —
        // live-tail forgiveness covers only short frames, not bad CRCs.
        match stream.poll(16) {
            Err(ShipError::CorruptFrame { segment: 0, .. }) => {}
            other => panic!("expected CorruptFrame, got {other:?}"),
        }
        // A repaired file heals the stream in place (re-fetch semantics).
        let mut fixed = io.read(&wal).unwrap();
        fixed[last] ^= 0xFF;
        io.write(&wal, &fixed).unwrap();
        assert_eq!(stream.poll(16).unwrap().ops.len(), 1);
    }

    #[test]
    fn rotation_advances_to_the_next_segment() {
        let io = Arc::new(MemIo::new());
        write_manifest(&io, 0);
        append_ops(&io, 0, &["A"]);
        let mut stream = FrameStream::new(Arc::clone(&io), dir(), ShipCursor::default());
        assert_eq!(stream.poll(16).unwrap().ops.len(), 1);
        // The leader checkpoints: generation 1 is live, segment 0 kept.
        write_manifest(&io, 1);
        append_ops(&io, 1, &["B", "C"]);
        let batch = stream.poll(16).unwrap();
        assert!(batch.rotated);
        assert!(batch.ops.is_empty());
        assert_eq!(stream.cursor(), ShipCursor { segment: 1, offset: 0, epoch: 1 });
        let batch = stream.poll(16).unwrap();
        assert_eq!(batch.ops.len(), 2);
        assert_eq!(stream.cursor().epoch, 3);
    }

    #[test]
    fn retired_segment_demands_rebootstrap() {
        let io = Arc::new(MemIo::new());
        write_manifest(&io, 0);
        append_ops(&io, 0, &["A"]);
        let mut stream = FrameStream::new(Arc::clone(&io), dir(), ShipCursor::default());
        assert_eq!(stream.poll(16).unwrap().ops.len(), 1);
        // The leader checkpoints and retires segment 0 entirely.
        write_manifest(&io, 1);
        io.remove_file(&dir().join(wal_name(0))).unwrap();
        append_ops(&io, 1, &["B"]);
        match stream.poll(16) {
            Err(ShipError::SegmentRetired { segment: 0, live: 1 }) => {}
            other => panic!("expected SegmentRetired, got {other:?}"),
        }
        // Re-bootstrap: seek to the live segment and resume.
        stream.seek(ShipCursor::start_of(1, 0));
        assert_eq!(stream.poll(16).unwrap().ops.len(), 1);
    }

    #[test]
    fn missing_manifest_tails_generation_zero() {
        // A leader writes its first manifest at its first checkpoint, so
        // a fresh leader directory is tailed as live generation 0.
        let io = Arc::new(MemIo::new());
        let mut stream = FrameStream::new(Arc::clone(&io), dir(), ShipCursor::default());
        assert!(stream.poll(16).unwrap().ops.is_empty());
        append_ops(&io, 0, &["A"]);
        assert_eq!(stream.poll(16).unwrap().ops.len(), 1);
    }

    #[test]
    fn damaged_manifest_and_leader_regression_are_detected() {
        let io = Arc::new(MemIo::new());
        io.write(&dir().join(MANIFEST_NAME), b"garbage").unwrap();
        let mut stream = FrameStream::new(Arc::clone(&io), dir(), ShipCursor::default());
        assert!(matches!(stream.poll(16), Err(ShipError::NoManifest)));
        write_manifest(&io, 0);
        stream.seek(ShipCursor::start_of(5, 0));
        assert!(matches!(stream.poll(16), Err(ShipError::SegmentRetired { segment: 5, live: 0 })));
    }

    #[test]
    fn empty_live_wal_is_caught_up_not_an_error() {
        let io = Arc::new(MemIo::new());
        write_manifest(&io, 0);
        // No wal file at all: generation 0 before the first append.
        let mut stream = FrameStream::new(Arc::clone(&io), dir(), ShipCursor::default());
        let batch = stream.poll(16).unwrap();
        assert!(batch.ops.is_empty() && !batch.rotated);
        assert_eq!(batch.live_segment, 0);
    }

    #[test]
    fn names_roundtrip() {
        assert_eq!(snap_name(7), "snap-0000000000000007.lsdf");
        assert_eq!(wal_name(12), "wal-0000000000000012.log");
        assert_eq!(parse_generation(&snap_name(42), "snap-", ".lsdf"), Some(42));
        assert_eq!(parse_generation(&wal_name(42), "wal-", ".log"), Some(42));
        assert_eq!(parse_generation("snap-42.lsdf", "snap-", ".lsdf"), None);
        assert_eq!(parse_generation("wal-00000000000000x2.log", "wal-", ".log"), None);
    }
}
