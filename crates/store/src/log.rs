//! Append-only operation log with checksummed framing.
//!
//! Complements [`crate::snapshot`]: a snapshot captures a point-in-time
//! image, the log records the stream of insertions and removals since. Log
//! records are *self-describing* — each carries the full entity values of
//! its fact — so a log can be replayed into any store (fresh or snapshot-
//! restored) regardless of id assignment.
//!
//! # On-disk framing
//!
//! Each record is a frame:
//!
//! ```text
//! [payload len: u32 le][crc32(payload): u32 le][payload]
//! payload = op tag (u8) + three encoded entity values
//! ```
//!
//! The frame makes crash recovery possible: a write torn mid-record leaves
//! either a short frame (length prefix promises more bytes than exist) or
//! a checksum mismatch, and in both cases the damage is confined to the
//! log's *tail*. [`recover`] applies every intact frame in order, stops at
//! the first damaged one, and reports the byte length of the valid prefix
//! so the caller can truncate the tail away. The strict [`decode`] /
//! [`replay`] entry points instead treat any damage as an error.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec::{self, CodecError};
use crate::io::crc32;
use crate::store::FactStore;
use crate::value::EntityValue;

const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;

/// Bytes of frame header: payload length + checksum.
pub const FRAME_HEADER_LEN: usize = 8;

/// A single logged operation.
#[derive(Clone, Debug, PartialEq)]
pub enum LogOp {
    /// Insert the fact described by the three values.
    Insert(EntityValue, EntityValue, EntityValue),
    /// Remove the fact described by the three values.
    Remove(EntityValue, EntityValue, EntityValue),
}

impl LogOp {
    fn tag(&self) -> u8 {
        match self {
            LogOp::Insert(..) => OP_INSERT,
            LogOp::Remove(..) => OP_REMOVE,
        }
    }

    fn values(&self) -> [&EntityValue; 3] {
        match self {
            LogOp::Insert(s, r, t) | LogOp::Remove(s, r, t) => [s, r, t],
        }
    }
}

/// Encodes one operation as a self-contained checksummed frame, ready to
/// be appended to a log file.
///
/// # Panics
/// Panics if any value is a path entity (derived data; see [`FactLog`]).
pub fn encode_frame(op: &LogOp) -> Vec<u8> {
    encode_frame_parts(op.tag(), op.values())
}

/// Encodes a frame straight from borrowed values — the zero-copy core of
/// [`encode_frame`] and the `*_ref` appenders.
fn encode_frame_parts(tag: u8, values: [&EntityValue; 3]) -> Vec<u8> {
    for v in values {
        assert!(
            !matches!(v, EntityValue::Path(_)),
            "path entities are derived and cannot be logged"
        );
    }
    let mut payload = BytesMut::new();
    payload.put_u8(tag);
    for v in values {
        codec::encode_value(&mut payload, v);
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame.put_u32_le(payload.len() as u32);
    frame.put_u32_le(crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// An in-memory append-only log of store operations.
///
/// Path entities cannot be logged (their ids are store-specific); they are
/// derived data produced by composition inference and are re-derivable, so
/// excluding them loses no base information.
#[derive(Clone, Debug, Default)]
pub struct FactLog {
    buf: BytesMut,
    ops: usize,
}

impl FactLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operation.
    ///
    /// # Panics
    /// Panics if any value is a path entity (derived data; see type docs).
    pub fn append(&mut self, op: &LogOp) {
        self.buf.put_slice(&encode_frame(op));
        self.ops += 1;
    }

    /// Convenience: log an insertion of three values.
    pub fn insert(
        &mut self,
        s: impl Into<EntityValue>,
        r: impl Into<EntityValue>,
        t: impl Into<EntityValue>,
    ) {
        self.append(&LogOp::Insert(s.into(), r.into(), t.into()));
    }

    /// Convenience: log a removal of three values.
    pub fn remove(
        &mut self,
        s: impl Into<EntityValue>,
        r: impl Into<EntityValue>,
        t: impl Into<EntityValue>,
    ) {
        self.append(&LogOp::Remove(s.into(), r.into(), t.into()));
    }

    /// Logs an insertion from borrowed values: the frame is encoded
    /// directly from the borrows, so the hot write path never clones an
    /// `EntityValue` just to log it.
    ///
    /// # Panics
    /// Panics if any value is a path entity (derived data; see type docs).
    pub fn insert_ref(&mut self, s: &EntityValue, r: &EntityValue, t: &EntityValue) {
        self.buf.put_slice(&encode_frame_parts(OP_INSERT, [s, r, t]));
        self.ops += 1;
    }

    /// Logs a removal from borrowed values (see [`FactLog::insert_ref`]).
    ///
    /// # Panics
    /// Panics if any value is a path entity (derived data; see type docs).
    pub fn remove_ref(&mut self, s: &EntityValue, r: &EntityValue, t: &EntityValue) {
        self.buf.put_slice(&encode_frame_parts(OP_REMOVE, [s, r, t]));
        self.ops += 1;
    }

    /// Number of logged operations.
    pub fn len(&self) -> usize {
        self.ops
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.ops == 0
    }

    /// The encoded byte size of the log.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// A frozen copy of the encoded log.
    pub fn bytes(&self) -> Bytes {
        Bytes::copy_from_slice(&self.buf)
    }

    /// Writes the encoded log to a file atomically (temp + rename).
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        crate::io::atomic_write(path, &self.buf)
    }
}

/// A streaming iterator over the frames of an encoded log.
///
/// Yields each decoded operation in order; the first damaged frame (torn
/// tail, checksum mismatch, or malformed payload) yields one `Err` and
/// ends the iteration. [`Frames::valid_bytes`] reports how many leading
/// bytes held intact frames — the truncation point for crash recovery.
#[derive(Debug)]
pub struct Frames<'a> {
    data: &'a [u8],
    offset: usize,
    failed: bool,
}

impl<'a> Frames<'a> {
    /// Starts iterating over an encoded log.
    pub fn new(data: &'a [u8]) -> Self {
        Frames { data, offset: 0, failed: false }
    }

    /// Byte length of the valid prefix decoded so far.
    pub fn valid_bytes(&self) -> usize {
        self.offset
    }

    /// True if iteration ended at a damaged frame rather than clean EOF.
    pub fn damaged(&self) -> bool {
        self.failed
    }

    fn next_frame(&mut self) -> Result<LogOp, CodecError> {
        let rest = &self.data[self.offset..];
        if rest.len() < FRAME_HEADER_LEN {
            return Err(CodecError::UnexpectedEof);
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let stored = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let body = &rest[FRAME_HEADER_LEN..];
        if len > body.len() {
            // A torn frame: the length prefix promises bytes that never
            // reached the disk. No allocation happens based on `len`.
            return Err(CodecError::UnexpectedEof);
        }
        let payload = &body[..len];
        let computed = crc32(payload);
        if computed != stored {
            return Err(CodecError::BadChecksum { stored, computed });
        }
        let mut input = payload;
        let tag = codec::get_u8(&mut input)?;
        let s = codec::decode_value(&mut input, 0)?;
        let r = codec::decode_value(&mut input, 0)?;
        let t = codec::decode_value(&mut input, 0)?;
        if input.has_remaining() {
            return Err(CodecError::BadLength(len));
        }
        let op = match tag {
            OP_INSERT => LogOp::Insert(s, r, t),
            OP_REMOVE => LogOp::Remove(s, r, t),
            other => return Err(CodecError::BadTag(other)),
        };
        self.offset += FRAME_HEADER_LEN + len;
        Ok(op)
    }
}

impl Iterator for Frames<'_> {
    type Item = Result<LogOp, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.offset == self.data.len() {
            return None;
        }
        match self.next_frame() {
            Ok(op) => Some(Ok(op)),
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Applies one operation to a store.
pub fn apply(op: LogOp, store: &mut FactStore) {
    match op {
        LogOp::Insert(s, r, t) => {
            store.add(s, r, t);
        }
        LogOp::Remove(s, r, t) => {
            let (s, r, t) = (store.entity(s), store.entity(r), store.entity(t));
            store.remove(&crate::fact::Fact::new(s, r, t));
        }
    }
}

/// Strictly decodes an encoded log into its operations; any damaged frame
/// is an error.
pub fn decode(input: impl AsRef<[u8]>) -> Result<Vec<LogOp>, CodecError> {
    Frames::new(input.as_ref()).collect()
}

/// Strictly replays an encoded log into a store, streaming record by
/// record; returns the number of operations applied. Any damaged frame is
/// an error — but operations before it have already been applied, so use
/// this only where damage is fatal anyway (e.g. [`replay_file`] after a
/// clean shutdown). For crash recovery use [`recover`].
pub fn replay(input: impl AsRef<[u8]>, store: &mut FactStore) -> Result<usize, CodecError> {
    let mut span = loosedb_obs::span!("store.log.replay", bytes = input.as_ref().len());
    let mut n = 0;
    for op in Frames::new(input.as_ref()) {
        apply(op?, store);
        n += 1;
    }
    span.record("ops", n);
    Ok(n)
}

/// The outcome of lenient crash recovery over a log ([`recover`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Recovery {
    /// Operations decoded from intact frames and applied.
    pub applied: usize,
    /// Byte length of the valid log prefix; the caller should truncate
    /// the file to this length to drop the damaged tail.
    pub valid_bytes: usize,
    /// True if a damaged frame stopped the replay (torn tail or
    /// corruption), false if the whole log was intact.
    pub damaged: bool,
}

/// Leniently replays a possibly crash-damaged log into a store: applies
/// every intact frame in order, stops at the first torn or corrupt one,
/// and reports how much of the log was valid. Never fails — a log that is
/// damaged from byte zero simply recovers zero operations.
pub fn recover(input: impl AsRef<[u8]>, store: &mut FactStore) -> Recovery {
    let mut span = loosedb_obs::span!("store.log.recover", bytes = input.as_ref().len());
    let mut frames = Frames::new(input.as_ref());
    let mut applied = 0;
    let mut damaged = false;
    for op in &mut frames {
        match op {
            Ok(op) => {
                apply(op, store);
                applied += 1;
            }
            Err(_) => damaged = true,
        }
    }
    span.record("ops", applied);
    span.record("damaged", damaged);
    Recovery { applied, valid_bytes: frames.valid_bytes(), damaged }
}

/// Loads and strictly replays a log file into a store.
pub fn replay_file(
    path: impl AsRef<std::path::Path>,
    store: &mut FactStore,
) -> std::io::Result<usize> {
    let data = std::fs::read(path)?;
    replay(data, store)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Pattern;

    #[test]
    fn log_and_replay() {
        let mut log = FactLog::new();
        log.insert("JOHN", "EARNS", 25000i64);
        log.insert("JOHN", "LIKES", "FELIX");
        log.remove("JOHN", "LIKES", "FELIX");
        assert_eq!(log.len(), 3);

        let mut store = FactStore::new();
        let applied = replay(log.bytes(), &mut store).unwrap();
        assert_eq!(applied, 3);
        assert_eq!(store.len(), 1);
        let john = store.lookup_symbol("JOHN").unwrap();
        assert_eq!(store.count(Pattern::from_source(john)), 1);
    }

    #[test]
    fn replay_into_populated_store_is_id_independent() {
        // Fill the target store so its ids differ from the logging store's.
        let mut store = FactStore::new();
        store.add("PADDING-1", "PADDING-2", "PADDING-3");
        let mut log = FactLog::new();
        log.insert("A", "R", "B");
        replay(log.bytes(), &mut store).unwrap();
        let a = store.lookup_symbol("A").unwrap();
        assert_eq!(store.count(Pattern::from_source(a)), 1);
    }

    #[test]
    fn decode_roundtrip() {
        let mut log = FactLog::new();
        log.insert("X", "R", 5i64);
        log.remove("X", "R", 5i64);
        let ops = decode(log.bytes()).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(
            ops[0],
            LogOp::Insert(EntityValue::symbol("X"), EntityValue::symbol("R"), EntityValue::Int(5))
        );
        assert!(matches!(ops[1], LogOp::Remove(..)));
    }

    #[test]
    fn truncated_log_is_an_error() {
        let mut log = FactLog::new();
        log.insert("JOHN", "EARNS", 25000i64);
        let data = log.bytes();
        for cut in 1..data.len() {
            assert!(decode(data.slice(..cut)).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_is_an_error() {
        let mut log = FactLog::new();
        log.insert("JOHN", "EARNS", 25000i64);
        let clean = log.bytes().to_vec();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at byte {i}");
        }
    }

    #[test]
    fn recover_stops_at_torn_tail() {
        let mut log = FactLog::new();
        log.insert("A", "R", "B");
        log.insert("C", "R", "D");
        log.insert("E", "R", "F");
        let clean = log.bytes().to_vec();

        // Cut anywhere inside the third frame: two ops recover.
        let two_frames = {
            let mut l = FactLog::new();
            l.insert("A", "R", "B");
            l.insert("C", "R", "D");
            l.byte_len()
        };
        for cut in two_frames + 1..clean.len() {
            let mut store = FactStore::new();
            let report = recover(&clean[..cut], &mut store);
            assert_eq!(report.applied, 2, "cut at {cut}");
            assert_eq!(report.valid_bytes, two_frames);
            assert!(report.damaged);
            assert_eq!(store.len(), 2);
        }

        // The intact log recovers everything and reports no damage.
        let mut store = FactStore::new();
        let report = recover(&clean, &mut store);
        assert_eq!(report, Recovery { applied: 3, valid_bytes: clean.len(), damaged: false });
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn recover_stops_at_bit_rot() {
        let mut log = FactLog::new();
        log.insert("A", "R", "B");
        log.insert("C", "R", "D");
        let mut data = log.bytes().to_vec();
        let first = FRAME_HEADER_LEN + {
            let mut l = FactLog::new();
            l.insert("A", "R", "B");
            l.byte_len() - FRAME_HEADER_LEN
        };
        // Corrupt the second frame's payload.
        let last = data.len() - 1;
        data[last] ^= 0xFF;
        let mut store = FactStore::new();
        let report = recover(&data, &mut store);
        assert_eq!(report.applied, 1);
        assert_eq!(report.valid_bytes, first);
        assert!(report.damaged);
    }

    #[test]
    fn path_values_rejected() {
        let op = LogOp::Insert(
            EntityValue::Path(vec![crate::value::EntityId(1)].into()),
            EntityValue::symbol("R"),
            EntityValue::symbol("B"),
        );
        let panic = std::panic::catch_unwind(|| encode_frame(&op));
        assert!(panic.is_err());
    }

    #[test]
    fn empty_log_replays_to_nothing() {
        let log = FactLog::new();
        let mut store = FactStore::new();
        assert_eq!(replay(log.bytes(), &mut store).unwrap(), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let mut log = FactLog::new();
        log.insert("A", "R", "B");
        let dir = std::env::temp_dir().join(format!("loosedb-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ops.log");
        log.save(&path).unwrap();
        let mut store = FactStore::new();
        assert_eq!(replay_file(&path, &mut store).unwrap(), 1);
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
