//! Append-only operation log.
//!
//! Complements [`crate::snapshot`]: a snapshot captures a point-in-time
//! image, the log records the stream of insertions and removals since. Log
//! records are *self-describing* — each carries the full entity values of
//! its fact — so a log can be replayed into any store (fresh or snapshot-
//! restored) regardless of id assignment.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec::{self, CodecError};
use crate::store::FactStore;
use crate::value::EntityValue;

const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;

/// A single logged operation.
#[derive(Clone, Debug, PartialEq)]
pub enum LogOp {
    /// Insert the fact described by the three values.
    Insert(EntityValue, EntityValue, EntityValue),
    /// Remove the fact described by the three values.
    Remove(EntityValue, EntityValue, EntityValue),
}

impl LogOp {
    fn tag(&self) -> u8 {
        match self {
            LogOp::Insert(..) => OP_INSERT,
            LogOp::Remove(..) => OP_REMOVE,
        }
    }

    fn values(&self) -> [&EntityValue; 3] {
        match self {
            LogOp::Insert(s, r, t) | LogOp::Remove(s, r, t) => [s, r, t],
        }
    }
}

/// An in-memory append-only log of store operations.
///
/// Path entities cannot be logged (their ids are store-specific); they are
/// derived data produced by composition inference and are re-derivable, so
/// excluding them loses no base information.
#[derive(Clone, Debug, Default)]
pub struct FactLog {
    buf: BytesMut,
    ops: usize,
}

impl FactLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operation.
    ///
    /// # Panics
    /// Panics if any value is a path entity (derived data; see type docs).
    pub fn append(&mut self, op: &LogOp) {
        for v in op.values() {
            assert!(
                !matches!(v, EntityValue::Path(_)),
                "path entities are derived and cannot be logged"
            );
        }
        self.buf.put_u8(op.tag());
        for v in op.values() {
            codec::encode_value(&mut self.buf, v);
        }
        self.ops += 1;
    }

    /// Convenience: log an insertion of three values.
    pub fn insert(
        &mut self,
        s: impl Into<EntityValue>,
        r: impl Into<EntityValue>,
        t: impl Into<EntityValue>,
    ) {
        self.append(&LogOp::Insert(s.into(), r.into(), t.into()));
    }

    /// Convenience: log a removal of three values.
    pub fn remove(
        &mut self,
        s: impl Into<EntityValue>,
        r: impl Into<EntityValue>,
        t: impl Into<EntityValue>,
    ) {
        self.append(&LogOp::Remove(s.into(), r.into(), t.into()));
    }

    /// Number of logged operations.
    pub fn len(&self) -> usize {
        self.ops
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.ops == 0
    }

    /// The encoded byte size of the log.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// A frozen copy of the encoded log.
    pub fn bytes(&self) -> Bytes {
        Bytes::copy_from_slice(&self.buf)
    }

    /// Writes the encoded log to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, &self.buf)
    }
}

/// Decodes an encoded log into its operations.
pub fn decode(mut input: impl Buf) -> Result<Vec<LogOp>, CodecError> {
    let mut ops = Vec::new();
    while input.has_remaining() {
        let tag = codec::get_u8(&mut input)?;
        let s = codec::decode_value(&mut input, 0)?;
        let r = codec::decode_value(&mut input, 0)?;
        let t = codec::decode_value(&mut input, 0)?;
        ops.push(match tag {
            OP_INSERT => LogOp::Insert(s, r, t),
            OP_REMOVE => LogOp::Remove(s, r, t),
            other => return Err(CodecError::BadTag(other)),
        });
    }
    Ok(ops)
}

/// Replays an encoded log into a store, returning the number of operations
/// applied.
pub fn replay(input: impl Buf, store: &mut FactStore) -> Result<usize, CodecError> {
    let ops = decode(input)?;
    let n = ops.len();
    for op in ops {
        match op {
            LogOp::Insert(s, r, t) => {
                store.add(s, r, t);
            }
            LogOp::Remove(s, r, t) => {
                let (s, r, t) = (store.entity(s), store.entity(r), store.entity(t));
                store.remove(&crate::fact::Fact::new(s, r, t));
            }
        }
    }
    Ok(n)
}

/// Loads and replays a log file into a store.
pub fn replay_file(
    path: impl AsRef<std::path::Path>,
    store: &mut FactStore,
) -> std::io::Result<usize> {
    let data = std::fs::read(path)?;
    replay(Bytes::from(data), store)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Pattern;

    #[test]
    fn log_and_replay() {
        let mut log = FactLog::new();
        log.insert("JOHN", "EARNS", 25000i64);
        log.insert("JOHN", "LIKES", "FELIX");
        log.remove("JOHN", "LIKES", "FELIX");
        assert_eq!(log.len(), 3);

        let mut store = FactStore::new();
        let applied = replay(log.bytes(), &mut store).unwrap();
        assert_eq!(applied, 3);
        assert_eq!(store.len(), 1);
        let john = store.lookup_symbol("JOHN").unwrap();
        assert_eq!(store.count(Pattern::from_source(john)), 1);
    }

    #[test]
    fn replay_into_populated_store_is_id_independent() {
        // Fill the target store so its ids differ from the logging store's.
        let mut store = FactStore::new();
        store.add("PADDING-1", "PADDING-2", "PADDING-3");
        let mut log = FactLog::new();
        log.insert("A", "R", "B");
        replay(log.bytes(), &mut store).unwrap();
        let a = store.lookup_symbol("A").unwrap();
        assert_eq!(store.count(Pattern::from_source(a)), 1);
    }

    #[test]
    fn decode_roundtrip() {
        let mut log = FactLog::new();
        log.insert("X", "R", 5i64);
        log.remove("X", "R", 5i64);
        let ops = decode(log.bytes()).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(
            ops[0],
            LogOp::Insert(
                EntityValue::symbol("X"),
                EntityValue::symbol("R"),
                EntityValue::Int(5)
            )
        );
        assert!(matches!(ops[1], LogOp::Remove(..)));
    }

    #[test]
    fn truncated_log_is_an_error() {
        let mut log = FactLog::new();
        log.insert("JOHN", "EARNS", 25000i64);
        let data = log.bytes();
        for cut in 1..data.len() {
            assert!(decode(data.slice(..cut)).is_err(), "cut at {cut}");
        }
    }

    #[test]
    #[should_panic(expected = "derived")]
    fn path_values_rejected() {
        let mut log = FactLog::new();
        log.insert(
            EntityValue::Path(vec![crate::value::EntityId(1)].into()),
            EntityValue::symbol("R"),
            EntityValue::symbol("B"),
        );
    }

    #[test]
    fn empty_log_replays_to_nothing() {
        let log = FactLog::new();
        let mut store = FactStore::new();
        assert_eq!(replay(log.bytes(), &mut store).unwrap(), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let mut log = FactLog::new();
        log.insert("A", "R", "B");
        let dir = std::env::temp_dir().join(format!("loosedb-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ops.log");
        log.save(&path).unwrap();
        let mut store = FactStore::new();
        assert_eq!(replay_file(&path, &mut store).unwrap(), 1);
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
