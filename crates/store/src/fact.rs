//! Facts and match patterns.
//!
//! A *fact* is the paper's atomic unit of information (§2.1): a named pair
//! of entities `(source, relationship, target)`. A [`Pattern`] is a fact
//! with any subset of positions left free — the storage-level counterpart
//! of the paper's *templates* with variables, used by the index layer to
//! answer primitive retrievals such as `(JOHN, *, *)`.

use std::fmt;

use crate::value::EntityId;

/// A stored fact `(s, r, t)`: entity `s` is related to entity `t` via the
/// relationship `r`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fact {
    /// The source entity.
    pub s: EntityId,
    /// The relationship entity (an element of `R ⊆ E`).
    pub r: EntityId,
    /// The target entity.
    pub t: EntityId,
}

impl Fact {
    /// Creates a fact from its three positions.
    #[inline]
    pub const fn new(s: EntityId, r: EntityId, t: EntityId) -> Self {
        Fact { s, r, t }
    }

    /// True if `e` occurs in any of the three positions.
    #[inline]
    pub fn mentions(&self, e: EntityId) -> bool {
        self.s == e || self.r == e || self.t == e
    }

    /// The fact with source and target swapped (used by inversion, §3.4).
    #[inline]
    pub fn flipped(&self, inverse_rel: EntityId) -> Fact {
        Fact::new(self.t, inverse_rel, self.s)
    }

    /// The three positions as an array `[s, r, t]`.
    #[inline]
    pub fn positions(&self) -> [EntityId; 3] {
        [self.s, self.r, self.t]
    }
}

impl From<(EntityId, EntityId, EntityId)> for Fact {
    fn from((s, r, t): (EntityId, EntityId, EntityId)) -> Self {
        Fact::new(s, r, t)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.s, self.r, self.t)
    }
}

/// One of the three positions of a fact.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Position {
    /// The source position.
    Source,
    /// The relationship position.
    Rel,
    /// The target position.
    Target,
}

impl Position {
    /// All three positions, in fact order.
    pub const ALL: [Position; 3] = [Position::Source, Position::Rel, Position::Target];

    /// Extracts this position from a fact.
    #[inline]
    pub fn of(self, fact: &Fact) -> EntityId {
        match self {
            Position::Source => fact.s,
            Position::Rel => fact.r,
            Position::Target => fact.t,
        }
    }
}

/// A match pattern: a fact with any subset of positions bound.
///
/// `None` positions match any entity (the `*` of navigation queries, §4.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Pattern {
    /// Required source, if bound.
    pub s: Option<EntityId>,
    /// Required relationship, if bound.
    pub r: Option<EntityId>,
    /// Required target, if bound.
    pub t: Option<EntityId>,
}

impl Pattern {
    /// The fully free pattern `(*, *, *)`.
    pub const ANY: Pattern = Pattern { s: None, r: None, t: None };

    /// Creates a pattern from three optional positions.
    pub const fn new(s: Option<EntityId>, r: Option<EntityId>, t: Option<EntityId>) -> Self {
        Pattern { s, r, t }
    }

    /// Pattern binding only the source: `(e, *, *)`.
    pub const fn from_source(e: EntityId) -> Self {
        Pattern { s: Some(e), r: None, t: None }
    }

    /// Pattern binding only the relationship: `(*, r, *)`.
    pub const fn from_rel(r: EntityId) -> Self {
        Pattern { s: None, r: Some(r), t: None }
    }

    /// Pattern binding only the target: `(*, *, e)`.
    pub const fn from_target(e: EntityId) -> Self {
        Pattern { s: None, r: None, t: Some(e) }
    }

    /// Pattern matching exactly one fact.
    pub const fn from_fact(f: Fact) -> Self {
        Pattern { s: Some(f.s), r: Some(f.r), t: Some(f.t) }
    }

    /// True if the fact satisfies every bound position.
    #[inline]
    pub fn matches(&self, fact: &Fact) -> bool {
        self.s.is_none_or(|s| s == fact.s)
            && self.r.is_none_or(|r| r == fact.r)
            && self.t.is_none_or(|t| t == fact.t)
    }

    /// Number of bound positions (0–3).
    #[inline]
    pub fn bound_count(&self) -> u32 {
        self.s.is_some() as u32 + self.r.is_some() as u32 + self.t.is_some() as u32
    }

    /// The shape of this pattern, used for index selection.
    #[inline]
    pub fn shape(&self) -> Shape {
        match (self.s.is_some(), self.r.is_some(), self.t.is_some()) {
            (false, false, false) => Shape::Free,
            (true, false, false) => Shape::S,
            (false, true, false) => Shape::R,
            (false, false, true) => Shape::T,
            (true, true, false) => Shape::SR,
            (true, false, true) => Shape::ST,
            (false, true, true) => Shape::RT,
            (true, true, true) => Shape::SRT,
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = |x: Option<EntityId>| x.map_or("*".to_string(), |e| e.to_string());
        write!(f, "({}, {}, {})", p(self.s), p(self.r), p(self.t))
    }
}

/// The eight possible bound/free shapes of a [`Pattern`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum Shape {
    Free,
    S,
    R,
    T,
    SR,
    ST,
    RT,
    SRT,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EntityId {
        EntityId(i)
    }

    #[test]
    fn fact_mentions() {
        let f = Fact::new(e(1), e(2), e(3));
        assert!(f.mentions(e(1)) && f.mentions(e(2)) && f.mentions(e(3)));
        assert!(!f.mentions(e(4)));
    }

    #[test]
    fn fact_flip() {
        let f = Fact::new(e(1), e(2), e(3));
        assert_eq!(f.flipped(e(9)), Fact::new(e(3), e(9), e(1)));
    }

    #[test]
    fn pattern_matching_each_shape() {
        let f = Fact::new(e(1), e(2), e(3));
        assert!(Pattern::ANY.matches(&f));
        assert!(Pattern::from_source(e(1)).matches(&f));
        assert!(!Pattern::from_source(e(9)).matches(&f));
        assert!(Pattern::from_rel(e(2)).matches(&f));
        assert!(Pattern::from_target(e(3)).matches(&f));
        assert!(Pattern::new(Some(e(1)), None, Some(e(3))).matches(&f));
        assert!(!Pattern::new(Some(e(1)), None, Some(e(9))).matches(&f));
        assert!(Pattern::from_fact(f).matches(&f));
    }

    #[test]
    fn shapes() {
        assert_eq!(Pattern::ANY.shape(), Shape::Free);
        assert_eq!(Pattern::from_source(e(1)).shape(), Shape::S);
        assert_eq!(Pattern::from_rel(e(1)).shape(), Shape::R);
        assert_eq!(Pattern::from_target(e(1)).shape(), Shape::T);
        assert_eq!(Pattern::new(Some(e(1)), Some(e(2)), None).shape(), Shape::SR);
        assert_eq!(Pattern::new(Some(e(1)), None, Some(e(2))).shape(), Shape::ST);
        assert_eq!(Pattern::new(None, Some(e(1)), Some(e(2))).shape(), Shape::RT);
        assert_eq!(Pattern::from_fact(Fact::new(e(1), e(2), e(3))).shape(), Shape::SRT);
    }

    #[test]
    fn bound_count() {
        assert_eq!(Pattern::ANY.bound_count(), 0);
        assert_eq!(Pattern::from_rel(e(1)).bound_count(), 1);
        assert_eq!(Pattern::from_fact(Fact::new(e(1), e(2), e(3))).bound_count(), 3);
    }

    #[test]
    fn position_extraction() {
        let f = Fact::new(e(1), e(2), e(3));
        assert_eq!(Position::Source.of(&f), e(1));
        assert_eq!(Position::Rel.of(&f), e(2));
        assert_eq!(Position::Target.of(&f), e(3));
    }
}
