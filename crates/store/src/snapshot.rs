//! Whole-store snapshots: a compact, self-contained binary image of a
//! [`FactStore`].
//!
//! The paper leaves "suitable storage strategies" as an open problem (§6.2);
//! snapshots plus the append-only [`crate::log`] are the persistence design
//! we provide (and measure in experiment E12). A snapshot stores the entity
//! table (in id order, excluding the deterministic reserved specials) and
//! then the fact set as raw id triples.

use bytes::{BufMut, Bytes, BytesMut};

use crate::codec::{self, CodecError};
use crate::fact::Fact;
use crate::special;
use crate::store::FactStore;
use crate::value::EntityId;

const MAGIC: &[u8; 4] = b"LSDB";
const VERSION: u16 = 1;

/// Serializes the store into a snapshot buffer.
pub fn encode(store: &FactStore) -> Bytes {
    let mut out = BytesMut::with_capacity(64 + store.len() * 12);
    out.put_slice(MAGIC);
    out.put_u16_le(VERSION);

    let total = store.entity_count() as u32;
    out.put_u32_le(total - special::RESERVED);
    for (id, value) in store.interner().iter() {
        if special::is_special(id) {
            continue;
        }
        codec::encode_value(&mut out, value);
    }

    out.put_u64_le(store.len() as u64);
    for f in store.iter() {
        out.put_u32_le(f.s.0);
        out.put_u32_le(f.r.0);
        out.put_u32_le(f.t.0);
    }
    out.freeze()
}

/// Reconstructs a store from a snapshot buffer.
pub fn decode(mut input: impl bytes::Buf) -> Result<FactStore, CodecError> {
    if input.remaining() < 6 {
        return Err(CodecError::UnexpectedEof);
    }
    let mut magic = [0u8; 4];
    input.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = input.get_u16_le();
    if version != VERSION {
        return Err(CodecError::BadVersion(version));
    }

    let mut store = FactStore::new();
    let entity_count = codec::get_u32(&mut input)?;
    for i in 0..entity_count {
        let next_id = special::RESERVED + i;
        let value = codec::decode_value(&mut input, next_id)?;
        let id = store.entity(value);
        // Entities were written in id order and specials are pre-interned,
        // so re-interning must reproduce the same dense ids.
        if id.0 != next_id {
            return Err(CodecError::IdOutOfRange(id.0));
        }
    }

    let max_id = store.entity_count() as u32;
    let fact_count = codec::get_u64(&mut input)?;
    for _ in 0..fact_count {
        let s = codec::get_u32(&mut input)?;
        let r = codec::get_u32(&mut input)?;
        let t = codec::get_u32(&mut input)?;
        for raw in [s, r, t] {
            if raw >= max_id {
                return Err(CodecError::IdOutOfRange(raw));
            }
        }
        store.insert(Fact::new(EntityId(s), EntityId(r), EntityId(t)));
    }
    Ok(store)
}

/// Writes a snapshot to a file atomically (temp + fsync + rename), so a
/// crash mid-save leaves any previous snapshot intact.
pub fn save(store: &FactStore, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    let _span = loosedb_obs::span!("store.snapshot.save", facts = store.len());
    crate::io::atomic_write(path, &encode(store))
}

/// Loads a snapshot from a file.
pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<FactStore> {
    let mut span = loosedb_obs::span!("store.snapshot.load");
    let data = std::fs::read(path)?;
    span.record("bytes", data.len());
    decode(Bytes::from(data))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::Pattern;
    use crate::value::EntityValue;

    fn sample() -> FactStore {
        let mut store = FactStore::new();
        store.add("JOHN", "EARNS", 25000i64);
        store.add("JOHN", "isa", "EMPLOYEE");
        store.add("EMPLOYEE", "gen", "PERSON");
        store.add("GPA", "IS", 2.5);
        // A path entity referencing earlier entities.
        let fav = store.entity("FAVORITE-MUSIC");
        let pc9 = store.entity("PC#9-WAM");
        let comp = store.entity("COMPOSED-BY");
        let path = store.entity(EntityValue::Path(vec![fav, pc9, comp].into()));
        let john = store.lookup_symbol("JOHN").unwrap();
        let mozart = store.entity("MOZART");
        store.insert(Fact::new(john, path, mozart));
        store
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample();
        let decoded = decode(encode(&store)).expect("decode");
        assert_eq!(decoded.len(), store.len());
        assert_eq!(decoded.entity_count(), store.entity_count());
        let original: Vec<String> = store.iter().map(|f| store.display_fact(&f)).collect();
        let restored: Vec<String> = decoded.iter().map(|f| decoded.display_fact(&f)).collect();
        assert_eq!(original, restored);
    }

    #[test]
    fn roundtrip_empty_store() {
        let decoded = decode(encode(&FactStore::new())).expect("decode");
        assert!(decoded.is_empty());
        assert_eq!(decoded.entity_count(), special::RESERVED as usize);
    }

    #[test]
    fn queries_work_after_restore() {
        let decoded = decode(encode(&sample())).expect("decode");
        let john = decoded.lookup_symbol("JOHN").unwrap();
        assert_eq!(decoded.count(Pattern::from_source(john)), 3);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = encode(&sample()).to_vec();
        data[0] = b'X';
        assert!(matches!(decode(Bytes::from(data)), Err(CodecError::BadMagic)));
    }

    #[test]
    fn bad_version_rejected() {
        let mut data = encode(&sample()).to_vec();
        data[4] = 0xFF;
        assert!(matches!(decode(Bytes::from(data)), Err(CodecError::BadVersion(_))));
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let data = encode(&sample()).to_vec();
        for cut in 0..data.len() {
            let result = decode(Bytes::from(data[..cut].to_vec()));
            assert!(result.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn file_roundtrip() {
        let store = sample();
        let dir = std::env::temp_dir().join(format!("loosedb-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.lsdb");
        save(&store, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), store.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
