//! Binary encoding of entity values, shared by snapshots and logs.
//!
//! The format is deliberately simple and self-describing: a one-byte tag
//! followed by a fixed or length-prefixed payload. All integers are
//! little-endian.

use bytes::{Buf, BufMut};

use crate::value::{EntityId, EntityValue};

/// Errors produced while decoding persisted data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before a complete record was read.
    UnexpectedEof,
    /// The snapshot header did not start with the expected magic bytes.
    BadMagic,
    /// The snapshot was written by an unsupported format version.
    BadVersion(u16),
    /// An unknown value or operation tag was encountered.
    BadTag(u8),
    /// A symbol payload was not valid UTF-8.
    BadUtf8,
    /// A float payload decoded to NaN.
    NanFloat,
    /// A path or fact referred to an entity id that does not exist (yet).
    IdOutOfRange(u32),
    /// A declared length was implausibly large for the remaining input.
    BadLength(usize),
    /// A record's checksum did not match its contents.
    BadChecksum {
        /// The checksum stored alongside the record.
        stored: u32,
        /// The checksum computed from the record bytes.
        computed: u32,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadMagic => write!(f, "bad snapshot magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            CodecError::BadTag(t) => write!(f, "unknown tag {t}"),
            CodecError::BadUtf8 => write!(f, "symbol is not valid UTF-8"),
            CodecError::NanFloat => write!(f, "NaN float entity"),
            CodecError::IdOutOfRange(id) => write!(f, "entity id {id} out of range"),
            CodecError::BadLength(n) => write!(f, "declared length {n} exceeds input"),
            CodecError::BadChecksum { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

const TAG_SYMBOL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_PATH: u8 = 3;

/// Encodes one entity value.
pub fn encode_value(out: &mut impl BufMut, value: &EntityValue) {
    match value {
        EntityValue::Symbol(s) => {
            out.put_u8(TAG_SYMBOL);
            out.put_u32_le(s.len() as u32);
            out.put_slice(s.as_bytes());
        }
        EntityValue::Int(i) => {
            out.put_u8(TAG_INT);
            out.put_i64_le(*i);
        }
        EntityValue::Float(f) => {
            out.put_u8(TAG_FLOAT);
            out.put_f64_le(*f);
        }
        EntityValue::Path(p) => {
            out.put_u8(TAG_PATH);
            out.put_u32_le(p.len() as u32);
            for id in p.iter() {
                out.put_u32_le(id.0);
            }
        }
    }
}

/// Reads `n` bytes worth of payload availability, erroring on short input.
fn need(input: &impl Buf, n: usize) -> Result<(), CodecError> {
    if input.remaining() < n {
        Err(CodecError::UnexpectedEof)
    } else {
        Ok(())
    }
}

/// Decodes one entity value.
///
/// `max_id` bounds the ids a path value may reference: persisted entities
/// are written in id order, so a path may only refer to entities with
/// strictly smaller ids.
pub fn decode_value(input: &mut impl Buf, max_id: u32) -> Result<EntityValue, CodecError> {
    need(input, 1)?;
    let tag = input.get_u8();
    match tag {
        TAG_SYMBOL => {
            need(input, 4)?;
            let len = input.get_u32_le() as usize;
            if len > input.remaining() {
                return Err(CodecError::BadLength(len));
            }
            let mut buf = vec![0u8; len];
            input.copy_to_slice(&mut buf);
            let s = String::from_utf8(buf).map_err(|_| CodecError::BadUtf8)?;
            Ok(EntityValue::Symbol(s.into()))
        }
        TAG_INT => {
            need(input, 8)?;
            Ok(EntityValue::Int(input.get_i64_le()))
        }
        TAG_FLOAT => {
            need(input, 8)?;
            let f = input.get_f64_le();
            if f.is_nan() {
                return Err(CodecError::NanFloat);
            }
            Ok(EntityValue::float(f))
        }
        TAG_PATH => {
            need(input, 4)?;
            let len = input.get_u32_le() as usize;
            if len.checked_mul(4).is_none_or(|bytes| bytes > input.remaining()) {
                return Err(CodecError::BadLength(len));
            }
            let mut ids = Vec::with_capacity(len);
            for _ in 0..len {
                let raw = input.get_u32_le();
                if raw >= max_id {
                    return Err(CodecError::IdOutOfRange(raw));
                }
                ids.push(EntityId(raw));
            }
            Ok(EntityValue::Path(ids.into()))
        }
        other => Err(CodecError::BadTag(other)),
    }
}

/// Reads a little-endian `u32` with bounds checking.
pub fn get_u32(input: &mut impl Buf) -> Result<u32, CodecError> {
    need(input, 4)?;
    Ok(input.get_u32_le())
}

/// Reads a little-endian `u64` with bounds checking.
pub fn get_u64(input: &mut impl Buf) -> Result<u64, CodecError> {
    need(input, 8)?;
    Ok(input.get_u64_le())
}

/// Reads a single byte with bounds checking.
pub fn get_u8(input: &mut impl Buf) -> Result<u8, CodecError> {
    need(input, 1)?;
    Ok(input.get_u8())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn roundtrip(v: &EntityValue) -> EntityValue {
        let mut buf = BytesMut::new();
        encode_value(&mut buf, v);
        let mut input = buf.freeze();
        decode_value(&mut input, u32::MAX).expect("decode")
    }

    #[test]
    fn roundtrip_all_variants() {
        let values = [
            EntityValue::symbol("JOHN"),
            EntityValue::symbol(""),
            EntityValue::symbol("naïve-ütf8 ✓"),
            EntityValue::Int(0),
            EntityValue::Int(i64::MIN),
            EntityValue::Int(i64::MAX),
            EntityValue::float(2.5),
            EntityValue::float(-1e300),
            EntityValue::Path(vec![EntityId(1), EntityId(2), EntityId(3)].into()),
        ];
        for v in &values {
            assert_eq!(&roundtrip(v), v);
        }
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = BytesMut::new();
        encode_value(&mut buf, &EntityValue::symbol("HELLO"));
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(..cut);
            assert!(decode_value(&mut partial, u32::MAX).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut input = bytes::Bytes::from_static(&[99]);
        assert_eq!(decode_value(&mut input, u32::MAX), Err(CodecError::BadTag(99)));
    }

    #[test]
    fn path_id_bounds_enforced() {
        let mut buf = BytesMut::new();
        encode_value(
            &mut buf,
            &EntityValue::Path(vec![EntityId(5), EntityId(6), EntityId(7)].into()),
        );
        let mut input = buf.freeze();
        assert_eq!(decode_value(&mut input, 6), Err(CodecError::IdOutOfRange(6)));
    }

    #[test]
    fn absurd_length_rejected_without_allocation() {
        let mut buf = BytesMut::new();
        buf.put_u8(0); // symbol
        buf.put_u32_le(u32::MAX); // ludicrous length
        let mut input = buf.freeze();
        assert_eq!(
            decode_value(&mut input, u32::MAX),
            Err(CodecError::BadLength(u32::MAX as usize))
        );
    }

    #[test]
    fn nan_float_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(2);
        buf.put_f64_le(f64::NAN);
        let mut input = buf.freeze();
        assert_eq!(decode_value(&mut input, u32::MAX), Err(CodecError::NanFloat));
    }
}
