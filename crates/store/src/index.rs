//! Triple indexes: three rotations of the fact set in ordered containers.
//!
//! The store keeps every fact in three persistent ordered sets
//! ([`crate::pindex::PSet`]) under the orderings
//! `(s, r, t)`, `(r, t, s)` and `(t, s, r)`. Together these three rotations
//! answer *every* pattern shape with a single contiguous range scan:
//!
//! | shape | index | prefix |
//! |-------|-------|--------|
//! | `(s, *, *)` | SRT | `s` |
//! | `(s, r, *)` | SRT | `s, r` |
//! | `(*, r, *)` | RTS | `r` |
//! | `(*, r, t)` | RTS | `r, t` |
//! | `(*, *, t)` | TSR | `t` |
//! | `(s, *, t)` | TSR | `t, s` |
//! | `(s, r, t)` | SRT | exact membership |
//! | `(*, *, *)` | SRT | full scan |
//!
//! This is the classical triple-store layout (three of the six possible
//! permutations suffice); it is the "investment in organization" that the
//! paper's trade-off principle (§1) asks retrieval to be measured against —
//! experiment E1 compares it with the unindexed scan.
//!
//! Because the rotations are persistent B-trees, cloning a `TripleIndex`
//! is three reference-count bumps, and a clone diverges from its origin by
//! path-copying only the O(log N) nodes each subsequent update touches.
//! That property (measured in E17) is what lets a published generation
//! share almost the entire index with the writer's working copy.

use std::ops::Bound;

use crate::fact::{Fact, Pattern, Shape};
use crate::pindex::{PSet, SetRange};
use crate::value::EntityId;

type Key = [u32; 3];

/// The three-rotation index over a set of facts.
#[derive(Clone, Debug, Default)]
pub struct TripleIndex {
    srt: PSet<Key>,
    rts: PSet<Key>,
    tsr: PSet<Key>,
}

#[inline]
fn srt_key(f: &Fact) -> Key {
    [f.s.0, f.r.0, f.t.0]
}
#[inline]
fn rts_key(f: &Fact) -> Key {
    [f.r.0, f.t.0, f.s.0]
}
#[inline]
fn tsr_key(f: &Fact) -> Key {
    [f.t.0, f.s.0, f.r.0]
}

/// Inclusive range covering all keys with the given bound prefix.
#[inline]
fn prefix_range(a: Option<EntityId>, b: Option<EntityId>) -> (Bound<Key>, Bound<Key>) {
    match (a, b) {
        (None, _) => (Bound::Unbounded, Bound::Unbounded),
        (Some(a), None) => {
            (Bound::Included([a.0, 0, 0]), Bound::Included([a.0, u32::MAX, u32::MAX]))
        }
        (Some(a), Some(b)) => {
            (Bound::Included([a.0, b.0, 0]), Bound::Included([a.0, b.0, u32::MAX]))
        }
    }
}

impl TripleIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a fact into all three rotations. Returns true if it was new.
    pub fn insert(&mut self, f: Fact) -> bool {
        let fresh = self.srt.insert(srt_key(&f));
        if fresh {
            self.rts.insert(rts_key(&f));
            self.tsr.insert(tsr_key(&f));
        }
        fresh
    }

    /// Removes a fact from all three rotations. Returns true if present.
    pub fn remove(&mut self, f: &Fact) -> bool {
        let present = self.srt.remove(&srt_key(f));
        if present {
            self.rts.remove(&rts_key(f));
            self.tsr.remove(&tsr_key(f));
        }
        present
    }

    /// Exact membership test.
    #[inline]
    pub fn contains(&self, f: &Fact) -> bool {
        self.srt.contains(&srt_key(f))
    }

    /// Number of facts stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.srt.len()
    }

    /// True if no facts are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.srt.is_empty()
    }

    /// Removes every fact.
    pub fn clear(&mut self) {
        self.srt.clear();
        self.rts.clear();
        self.tsr.clear();
    }

    /// Iterates over all facts matching the pattern, using the single
    /// contiguous range dictated by the pattern's shape. Iteration order is
    /// deterministic (the order of the chosen rotation).
    pub fn matching(&self, pattern: Pattern) -> MatchIter<'_> {
        match pattern.shape() {
            Shape::Free => MatchIter::Srt(self.srt.range(..)),
            Shape::S | Shape::SR => {
                MatchIter::Srt(self.srt.range(prefix_range(pattern.s, pattern.r)))
            }
            Shape::R | Shape::RT => {
                MatchIter::Rts(self.rts.range(prefix_range(pattern.r, pattern.t)))
            }
            Shape::T | Shape::ST => {
                MatchIter::Tsr(self.tsr.range(prefix_range(pattern.t, pattern.s)))
            }
            Shape::SRT => {
                let f = Fact::new(
                    pattern.s.expect("shape SRT"),
                    pattern.r.expect("shape SRT"),
                    pattern.t.expect("shape SRT"),
                );
                MatchIter::One(self.contains(&f).then_some(f))
            }
        }
    }

    /// Counts matches, stopping early at `cap`. Used by the query planner
    /// for cheap selectivity estimates.
    pub fn count_up_to(&self, pattern: Pattern, cap: usize) -> usize {
        if pattern.shape() == Shape::Free {
            return self.len().min(cap);
        }
        self.matching(pattern).take(cap).count()
    }

    /// Counts all matches of a pattern.
    pub fn count(&self, pattern: Pattern) -> usize {
        if pattern.shape() == Shape::Free {
            return self.len();
        }
        self.matching(pattern).count()
    }

    /// Iterates over all facts in `(s, r, t)` order.
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        self.srt.iter().map(|k| Fact::new(EntityId(k[0]), EntityId(k[1]), EntityId(k[2])))
    }

    /// Unindexed check whether any fact mentions `e` in any position
    /// (uses three prefix probes, not a scan).
    pub fn mentions(&self, e: EntityId) -> bool {
        self.matching(Pattern::from_source(e)).next().is_some()
            || self.matching(Pattern::from_rel(e)).next().is_some()
            || self.matching(Pattern::from_target(e)).next().is_some()
    }

    /// The distinct relationship entities in use, in id order.
    pub fn relationships(&self) -> Vec<EntityId> {
        let mut rels = Vec::new();
        let mut cursor = self.rts.iter();
        let mut last: Option<u32> = None;
        for key in &mut cursor {
            if last != Some(key[0]) {
                rels.push(EntityId(key[0]));
                last = Some(key[0]);
            }
        }
        rels
    }
}

/// Iterator over facts matching a pattern (see [`TripleIndex::matching`]).
pub enum MatchIter<'a> {
    /// Range over the `(s, r, t)` rotation.
    Srt(SetRange<'a, Key>),
    /// Range over the `(r, t, s)` rotation.
    Rts(SetRange<'a, Key>),
    /// Range over the `(t, s, r)` rotation.
    Tsr(SetRange<'a, Key>),
    /// Zero or one fully bound fact.
    One(Option<Fact>),
}

impl Iterator for MatchIter<'_> {
    type Item = Fact;

    #[inline]
    fn next(&mut self) -> Option<Fact> {
        match self {
            MatchIter::Srt(range) => {
                range.next().map(|k| Fact::new(EntityId(k[0]), EntityId(k[1]), EntityId(k[2])))
            }
            MatchIter::Rts(range) => {
                range.next().map(|k| Fact::new(EntityId(k[2]), EntityId(k[0]), EntityId(k[1])))
            }
            MatchIter::Tsr(range) => {
                range.next().map(|k| Fact::new(EntityId(k[1]), EntityId(k[2]), EntityId(k[0])))
            }
            MatchIter::One(f) => f.take(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(s: u32, r: u32, t: u32) -> Fact {
        Fact::new(EntityId(s), EntityId(r), EntityId(t))
    }

    fn sample() -> TripleIndex {
        let mut idx = TripleIndex::new();
        for fact in [f(1, 10, 2), f(1, 10, 3), f(1, 11, 2), f(2, 10, 3), f(3, 11, 1)] {
            assert!(idx.insert(fact));
        }
        idx
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut idx = TripleIndex::new();
        assert!(idx.insert(f(1, 2, 3)));
        assert!(!idx.insert(f(1, 2, 3)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn remove_updates_all_rotations() {
        let mut idx = sample();
        assert!(idx.remove(&f(1, 10, 2)));
        assert!(!idx.remove(&f(1, 10, 2)));
        assert!(!idx.contains(&f(1, 10, 2)));
        // No rotation still yields the removed fact.
        assert!(!idx.matching(Pattern::from_source(EntityId(1))).any(|x| x == f(1, 10, 2)));
        assert!(!idx.matching(Pattern::from_rel(EntityId(10))).any(|x| x == f(1, 10, 2)));
        assert!(!idx.matching(Pattern::from_target(EntityId(2))).any(|x| x == f(1, 10, 2)));
    }

    #[test]
    fn every_shape_returns_exactly_the_matching_facts() {
        let idx = sample();
        let all: Vec<Fact> = idx.iter().collect();
        let patterns = [
            Pattern::ANY,
            Pattern::from_source(EntityId(1)),
            Pattern::from_rel(EntityId(10)),
            Pattern::from_target(EntityId(2)),
            Pattern::new(Some(EntityId(1)), Some(EntityId(10)), None),
            Pattern::new(Some(EntityId(1)), None, Some(EntityId(2))),
            Pattern::new(None, Some(EntityId(10)), Some(EntityId(3))),
            Pattern::from_fact(f(2, 10, 3)),
            Pattern::from_fact(f(9, 9, 9)),
            Pattern::from_source(EntityId(99)),
        ];
        for p in patterns {
            let via_index: std::collections::BTreeSet<Fact> = idx.matching(p).collect();
            let via_scan: std::collections::BTreeSet<Fact> =
                all.iter().copied().filter(|fact| p.matches(fact)).collect();
            assert_eq!(via_index, via_scan, "pattern {p}");
        }
    }

    #[test]
    fn boundary_ids_match() {
        // u32::MAX in any position must round-trip through the inclusive
        // range bounds.
        let mut idx = TripleIndex::new();
        let hi = u32::MAX;
        idx.insert(f(hi, hi, hi));
        idx.insert(f(0, hi, 0));
        assert_eq!(idx.matching(Pattern::from_source(EntityId(hi))).count(), 1);
        assert_eq!(idx.matching(Pattern::from_rel(EntityId(hi))).count(), 2);
        assert_eq!(
            idx.matching(Pattern::new(Some(EntityId(hi)), Some(EntityId(hi)), None)).count(),
            1
        );
    }

    #[test]
    fn count_up_to_caps() {
        let idx = sample();
        assert_eq!(idx.count_up_to(Pattern::from_source(EntityId(1)), 2), 2);
        assert_eq!(idx.count_up_to(Pattern::from_source(EntityId(1)), 100), 3);
        assert_eq!(idx.count_up_to(Pattern::ANY, 4), 4);
    }

    #[test]
    fn relationships_are_distinct_and_ordered() {
        let idx = sample();
        assert_eq!(idx.relationships(), vec![EntityId(10), EntityId(11)]);
    }

    #[test]
    fn mentions_checks_all_positions() {
        let idx = sample();
        assert!(idx.mentions(EntityId(10))); // relationship position
        assert!(idx.mentions(EntityId(3))); // source and target positions
        assert!(!idx.mentions(EntityId(42)));
    }

    #[test]
    fn clear_empties_everything() {
        let mut idx = sample();
        idx.clear();
        assert!(idx.is_empty());
        assert_eq!(idx.matching(Pattern::ANY).count(), 0);
    }
}
