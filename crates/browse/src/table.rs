//! Paper-style grouped tables (§4.1).
//!
//! Navigation answers are rendered as tables whose *columns* are
//! relationships and whose cells list the related entities — the paper's
//! `JOHN,*,*` display, where the first column lists what John *is*
//! (classes and generalizations) and each further column is one outgoing
//! relationship:
//!
//! ```text
//! JOHN,*,*     | LIKES      | WORKS-FOR | FAVORITE-MUSIC
//! PERSON       | CAT        | SHIPPING  | PC#9-WAM
//! EMPLOYEE     | FELIX      |           | S#5-LVB
//! ...          | ...        |           |
//! ```

use std::fmt;

/// A table of uneven columns: a title column plus one column per group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupedTable {
    /// The table title (shown as the header of the first column).
    pub title: String,
    /// Cells of the title column — navigation puts the entity's classes
    /// and generalizations here, as the paper's first column does.
    pub title_cells: Vec<String>,
    /// Column groups: `(header, cells)`.
    pub columns: Vec<(String, Vec<String>)>,
}

impl GroupedTable {
    /// Creates a table with a title and no columns.
    pub fn new(title: impl Into<String>) -> Self {
        GroupedTable { title: title.into(), title_cells: Vec::new(), columns: Vec::new() }
    }

    /// Appends a column.
    pub fn push_column(&mut self, header: impl Into<String>, cells: Vec<String>) {
        self.columns.push((header.into(), cells));
    }

    /// True if the table has no columns and no title cells.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty() && self.title_cells.is_empty()
    }

    /// Number of body rows (the longest column, title column included).
    pub fn height(&self) -> usize {
        self.columns
            .iter()
            .map(|(_, cells)| cells.len())
            .chain(std::iter::once(self.title_cells.len()))
            .max()
            .unwrap_or(0)
    }

    /// The header of column `i` (0 is the title column).
    pub fn header(&self, i: usize) -> Option<&str> {
        if i == 0 {
            Some(&self.title)
        } else {
            self.columns.get(i - 1).map(|(h, _)| h.as_str())
        }
    }
}

impl fmt::Display for GroupedTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column 0 is the title (header only, unless the first group is
        // "title cells" — navigation puts classes there explicitly).
        let mut headers: Vec<&str> = vec![&self.title];
        headers.extend(self.columns.iter().map(|(h, _)| h.as_str()));
        let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
        let height = self.height();
        for cell in &self.title_cells {
            widths[0] = widths[0].max(cell.chars().count());
        }
        for (i, (_, cells)) in self.columns.iter().enumerate() {
            for cell in cells {
                widths[i + 1] = widths[i + 1].max(cell.chars().count());
            }
        }

        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[&str]| -> fmt::Result {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str(" | ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            writeln!(f, "{}", line.trim_end())
        };

        write_row(f, &headers)?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let rule_refs: Vec<&str> = rule.iter().map(String::as_str).collect();
        write_row(f, &rule_refs)?;
        for row in 0..height {
            let mut cells: Vec<&str> =
                vec![self.title_cells.get(row).map(String::as_str).unwrap_or("")];
            for (_, col) in &self.columns {
                cells.push(col.get(row).map(String::as_str).unwrap_or(""));
            }
            write_row(f, &cells)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GroupedTable {
        let mut t = GroupedTable::new("JOHN,*,*");
        t.push_column("LIKES", vec!["CAT".into(), "FELIX".into(), "MOZART".into()]);
        t.push_column("WORKS-FOR", vec!["SHIPPING".into()]);
        t
    }

    #[test]
    fn dimensions() {
        let t = sample();
        assert_eq!(t.height(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.header(0), Some("JOHN,*,*"));
        assert_eq!(t.header(1), Some("LIKES"));
        assert_eq!(t.header(3), None);
    }

    #[test]
    fn render_aligns_uneven_columns() {
        let rendered = sample().to_string();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 5); // header + rule + 3 rows
        assert!(lines[0].contains("JOHN,*,*"));
        assert!(lines[0].contains("LIKES"));
        assert!(lines[0].contains("WORKS-FOR"));
        assert!(lines[2].contains("CAT"));
        assert!(lines[2].contains("SHIPPING"));
        // Short column padded with blanks: row 3 has no WORKS-FOR cell.
        assert!(lines[4].contains("MOZART"));
        assert!(!lines[4].contains("SHIPPING"));
        // No trailing whitespace on any line.
        assert!(lines.iter().all(|l| l.trim_end() == *l));
    }

    #[test]
    fn title_cells_render_under_title() {
        let mut t = GroupedTable::new("JOHN,*,*");
        t.title_cells = vec!["PERSON".into(), "EMPLOYEE".into()];
        t.push_column("LIKES", vec!["FELIX".into()]);
        assert_eq!(t.height(), 2);
        let rendered = t.to_string();
        let lines: Vec<&str> = rendered.lines().collect();
        assert!(lines[2].starts_with("PERSON"));
        assert!(lines[2].contains("FELIX"));
        assert!(lines[3].starts_with("EMPLOYEE"));
    }

    #[test]
    fn empty_table() {
        let t = GroupedTable::new("EMPTY");
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        let rendered = t.to_string();
        assert!(rendered.contains("EMPTY"));
    }
}
