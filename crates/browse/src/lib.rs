//! # loosedb-browse
//!
//! The browsing layer of loosedb — the paper's principal retrieval method
//! for loosely structured databases (§4–§6 of Motro, SIGMOD 1984):
//!
//! * [`navigate`] — browsing by navigation: neighborhood tables, the
//!   `try(e)` operator, and on-demand composition paths (§4.1).
//! * [`probe`] — browsing by probing: automatic retraction of failed
//!   queries through minimally broader queries, wave by wave (§5).
//! * [`operators`] — the §6.1 `relation(...)` structured-view operator
//!   and the definition facility for named query macros.
//! * [`session`] — an interactive [`Session`] interleaving navigation,
//!   standard queries and probing over one database.
//! * [`table`] — the paper-style grouped table renderer.
//!
//! ```
//! use loosedb_engine::Database;
//! use loosedb_browse::Session;
//!
//! let mut db = Database::new();
//! db.add("JOHN", "isa", "EMPLOYEE");
//! db.add("JOHN", "LIKES", "FELIX");
//!
//! let mut session = Session::new(db);
//! let table = session.focus("JOHN").unwrap();
//! assert!(table.to_string().contains("FELIX"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod navigate;
pub mod operators;
pub mod probe;
pub mod session;
pub mod sharded;
pub mod shared;
pub mod table;

pub use navigate::{navigate, paths_between, semantic_distance, try_entity, NavigateOptions, Path};
pub use operators::{
    function, relation, DefineError, Definitions, FunctionView, RelationRow, RelationTable,
};
pub use probe::{
    probe, probe_text, probe_with_taxonomy, retraction_set, Attempt, ProbeOptions, ProbeOutcome,
    ProbeReport, RetractionStep, Wave,
};
pub use session::{Session, SessionError};
pub use sharded::ShardedSession;
pub use shared::{CacheStats, SharedSession};
pub use table::GroupedTable;
