//! Browsing by navigation (§4.1).
//!
//! Navigation is template retrieval rendered for exploration: the user
//! examines the *neighborhood* of an entity with `(E, *, *)`, picks an
//! entity from the answer, retrieves *its* neighborhood, and so on — no
//! knowledge of the database's organization required.
//!
//! Three displays are provided:
//!
//! * [`navigate`] — the general grouped table for any template pattern;
//!   `(E, *, *)` groups outgoing facts by relationship with the entity's
//!   classes/generalizations in the title column (the paper's `JOHN,*,*`
//!   table), `(S, *, T)` lists every association between two entities,
//!   including composed paths (the paper's `LEOPOLD,*,MOZART` table).
//! * [`try_entity`] — the §6.1 `try(e)` operator: every fact in which the
//!   entity occurs, in any position, so that "even users completely
//!   unfamiliar with the database" can pick a starting point.
//! * [`paths_between`] — on-demand inference by composition (§3.7):
//!   enumerates the simple paths between two entities without
//!   materializing composition facts.

use std::collections::BTreeMap;

use loosedb_engine::{FactView, MathMatchError};
use loosedb_store::{special, EntityId, Fact, Interner, Pattern};

use crate::table::GroupedTable;

/// Options for navigation displays.
#[derive(Clone, Copy, Debug)]
pub struct NavigateOptions {
    /// Maximum chain length (in facts) for on-demand association paths in
    /// `(S, *, T)` displays; `1` shows only direct relationships.
    pub path_limit: usize,
    /// Maximum cells listed per column before truncation with `…`.
    pub max_cells: usize,
}

impl Default for NavigateOptions {
    /// `path_limit` defaults to 2 — single compositions, matching the
    /// paper's `(LEOPOLD, *, MOZART)` display; raise it to surface longer
    /// association chains (at greater "semantic distance", §6.1).
    fn default() -> Self {
        NavigateOptions { path_limit: 2, max_cells: 50 }
    }
}

/// A simple path of consecutive facts between two entities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// The facts traversed, in order; each fact's target is the next
    /// fact's source.
    pub hops: Vec<Fact>,
}

impl Path {
    /// The composed relationship name `r1.m1.r2…` (§3.7's path entity
    /// naming, e.g. `FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY`).
    pub fn display(&self, interner: &Interner) -> String {
        let mut parts = Vec::new();
        for (i, hop) in self.hops.iter().enumerate() {
            parts.push(interner.display(hop.r));
            if i + 1 < self.hops.len() {
                parts.push(interner.display(hop.t));
            }
        }
        parts.join(".")
    }

    /// Number of facts in the path.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True if the path has no hops.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

/// True if facts with this relationship participate in path browsing:
/// ordinary relationships plus `≺`/`∈` (mirroring materialized
/// composition), excluding bookkeeping and already-composed relationships.
fn traversable(interner: &Interner, r: EntityId) -> bool {
    if interner.resolve(r).as_path().is_some() {
        return false;
    }
    !special::is_special(r) || r == special::GEN || r == special::ISA
}

/// Enumerates all simple paths (no repeated entity) from `s` to `t` of at
/// most `max_len` facts, in deterministic order.
pub fn paths_between<V: FactView>(
    view: &V,
    s: EntityId,
    t: EntityId,
    max_len: usize,
) -> Result<Vec<Path>, MathMatchError> {
    let mut out = Vec::new();
    if s == t || max_len == 0 {
        return Ok(out);
    }
    let mut stack: Vec<Fact> = Vec::new();
    let mut visited: Vec<EntityId> = vec![s];
    dfs(view, s, t, max_len, &mut stack, &mut visited, &mut out)?;
    Ok(out)
}

fn dfs<V: FactView>(
    view: &V,
    current: EntityId,
    goal: EntityId,
    budget: usize,
    stack: &mut Vec<Fact>,
    visited: &mut Vec<EntityId>,
    out: &mut Vec<Path>,
) -> Result<(), MathMatchError> {
    if budget == 0 {
        return Ok(());
    }
    for fact in view.matches(Pattern::from_source(current))? {
        if !traversable(view.interner(), fact.r) {
            continue;
        }
        if fact.t == goal {
            // Multi-hop paths must not revisit the start (§3.7's cyclic
            // guard already ensures s ≠ t for the composed fact).
            let mut path = stack.clone();
            path.push(fact);
            if path.len() >= 2 {
                out.push(Path { hops: path });
            }
            continue;
        }
        if visited.contains(&fact.t) || special::is_special(fact.t) {
            continue;
        }
        stack.push(fact);
        visited.push(fact.t);
        dfs(view, fact.t, goal, budget - 1, stack, visited, out)?;
        visited.pop();
        stack.pop();
    }
    Ok(())
}

/// The *semantic distance* between two entities (§6.1): the length of
/// the shortest composition chain relating them, following fact
/// direction — "as the chain of compositions gets longer, the
/// relationship between its two end entities becomes less significant".
///
/// Returns `Some(0)` for an entity and itself, `Some(1)` for a direct
/// relationship, `Some(k)` for a shortest k-fact chain, and `None` when
/// no chain of at most `max_len` facts exists.
pub fn semantic_distance<V: FactView>(
    view: &V,
    from: EntityId,
    to: EntityId,
    max_len: usize,
) -> Result<Option<usize>, MathMatchError> {
    if from == to {
        return Ok(Some(0));
    }
    let mut frontier = vec![from];
    let mut visited: std::collections::BTreeSet<EntityId> = [from].into_iter().collect();
    for depth in 1..=max_len {
        let mut next = Vec::new();
        for &node in &frontier {
            for fact in view.matches(Pattern::from_source(node))? {
                if !traversable(view.interner(), fact.r) {
                    continue;
                }
                if fact.t == to {
                    return Ok(Some(depth));
                }
                if !special::is_special(fact.t) && visited.insert(fact.t) {
                    next.push(fact.t);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    Ok(None)
}

/// Renders the navigation table for a template pattern (§4.1).
///
/// * `(E, *, *)` — the entity's neighborhood: title cells are its classes
///   and generalizations, one column per other outgoing relationship.
/// * `(*, *, E)` — incoming neighborhood, one column per relationship.
/// * `(S, *, T)` — all associations between two entities: one column per
///   direct relationship, plus composed paths up to
///   [`NavigateOptions::path_limit`].
/// * `(*, R, *)` — two columns (source, target), one row per fact.
/// * any other pattern — grouped by relationship.
pub fn navigate<V: FactView>(
    view: &V,
    pattern: Pattern,
    opts: &NavigateOptions,
) -> Result<GroupedTable, MathMatchError> {
    let _span = loosedb_obs::span!("browse.navigate");
    let interner = view.interner();
    let title = render_pattern(interner, pattern);

    match (pattern.s, pattern.r, pattern.t) {
        // (S, *, T): association browsing, the LEOPOLD,*,MOZART display.
        (Some(s), None, Some(t)) => {
            let mut table = GroupedTable::new(title);
            for fact in view.matches(pattern)? {
                table.push_column(interner.display(fact.r), Vec::new());
            }
            for path in paths_between(view, s, t, opts.path_limit)? {
                table.push_column(path.display(interner), Vec::new());
            }
            Ok(table)
        }
        // (*, R, *): one relationship, tabulated source/target pairs.
        (None, Some(_), None) => {
            let mut sources = Vec::new();
            let mut targets = Vec::new();
            for fact in view.matches(pattern)? {
                sources.push(interner.display(fact.s));
                targets.push(interner.display(fact.t));
            }
            truncate(&mut sources, opts.max_cells);
            truncate(&mut targets, opts.max_cells);
            let mut table = GroupedTable::new(title);
            table.push_column("source", sources);
            table.push_column("target", targets);
            Ok(table)
        }
        // Everything else: group matches by relationship.
        _ => {
            let mut table = GroupedTable::new(title);
            let outgoing = pattern.s.is_some();
            // Group by relationship *id* — each relationship name is
            // rendered once per distinct relationship (not once per fact),
            // and duplicate entities are deduplicated before rendering.
            let mut groups: BTreeMap<EntityId, Vec<EntityId>> = BTreeMap::new();
            let mut identity: Vec<EntityId> = Vec::new();
            for fact in view.matches(pattern)? {
                // Skip virtual reflexive/Δ noise in displays.
                if fact.r == special::GEN && (fact.s == fact.t || fact.t == special::TOP) {
                    continue;
                }
                let shown = if outgoing { fact.t } else { fact.s };
                if outgoing && (fact.r == special::ISA || fact.r == special::GEN) {
                    identity.push(shown);
                } else {
                    groups.entry(fact.r).or_default().push(shown);
                }
            }
            let render = |ids: Vec<EntityId>, max: usize| {
                let mut ids = ids;
                ids.sort_unstable();
                ids.dedup();
                let mut cells: Vec<String> = ids.iter().map(|&e| interner.display(e)).collect();
                cells.sort();
                truncate(&mut cells, max);
                cells
            };
            table.title_cells = render(identity, opts.max_cells);
            // Columns stay alphabetical by rendered relationship name.
            let mut columns: Vec<(String, Vec<EntityId>)> =
                groups.into_iter().map(|(rel, cells)| (interner.display(rel), cells)).collect();
            columns.sort_by(|a, b| a.0.cmp(&b.0));
            for (rel, cells) in columns {
                let cells = render(cells, opts.max_cells);
                table.push_column(rel, cells);
            }
            Ok(table)
        }
    }
}

/// The §6.1 `try(e)` operator: all facts that include the entity, shown in
/// three groups by the position it occupies.
pub fn try_entity<V: FactView>(view: &V, e: EntityId) -> Result<GroupedTable, MathMatchError> {
    let interner = view.interner();
    let mut table = GroupedTable::new(format!("try({})", interner.display(e)));
    let groups: [(&str, Pattern); 3] = [
        ("as source", Pattern::from_source(e)),
        ("as relationship", Pattern::from_rel(e)),
        ("as target", Pattern::from_target(e)),
    ];
    for (label, pattern) in groups {
        let mut cells: Vec<String> = view
            .matches(pattern)?
            .into_iter()
            .filter(|f| !(f.r == special::GEN && (f.s == f.t || f.t == special::TOP)))
            .map(|f| {
                format!(
                    "({}, {}, {})",
                    interner.display(f.s),
                    interner.display(f.r),
                    interner.display(f.t)
                )
            })
            .collect();
        cells.sort();
        cells.dedup();
        if !cells.is_empty() {
            table.push_column(label, cells);
        }
    }
    Ok(table)
}

fn truncate(cells: &mut Vec<String>, max: usize) {
    if cells.len() > max {
        cells.truncate(max);
        cells.push("…".to_string());
    }
}

fn render_pattern(interner: &Interner, p: Pattern) -> String {
    let part = |x: Option<EntityId>| x.map_or("*".to_string(), |e| interner.display(e));
    format!("{},{},{}", part(p.s), part(p.r), part(p.t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use loosedb_engine::Database;

    fn music_db() -> Database {
        let mut db = Database::new();
        db.add("JOHN", "isa", "PERSON");
        db.add("JOHN", "isa", "EMPLOYEE");
        db.add("JOHN", "isa", "MUSIC-LOVER");
        db.add("JOHN", "LIKES", "FELIX");
        db.add("JOHN", "LIKES", "MOZART");
        db.add("JOHN", "WORKS-FOR", "SHIPPING");
        db.add("JOHN", "FAVORITE-MUSIC", "PC#9-WAM");
        db.add("PC#9-WAM", "COMPOSED-BY", "MOZART");
        db.add("LEOPOLD", "FATHER-OF", "MOZART");
        db
    }

    #[test]
    fn neighborhood_groups_by_relationship() {
        let mut db = music_db();
        let john = db.lookup_symbol("JOHN").unwrap();
        let view = db.view().unwrap();
        let table =
            navigate(&view, Pattern::from_source(john), &NavigateOptions::default()).unwrap();
        // Title column: classes.
        assert!(table.title_cells.contains(&"PERSON".to_string()));
        assert!(table.title_cells.contains(&"EMPLOYEE".to_string()));
        assert!(table.title_cells.contains(&"MUSIC-LOVER".to_string()));
        // One column per relationship, cells grouped.
        let headers: Vec<&str> = table.columns.iter().map(|(h, _)| h.as_str()).collect();
        assert_eq!(headers, vec!["FAVORITE-MUSIC", "LIKES", "WORKS-FOR"]);
        let likes = &table.columns[1].1;
        assert_eq!(likes, &vec!["FELIX".to_string(), "MOZART".to_string()]);
    }

    #[test]
    fn incoming_neighborhood() {
        let mut db = music_db();
        let mozart = db.lookup_symbol("MOZART").unwrap();
        let view = db.view().unwrap();
        let table =
            navigate(&view, Pattern::from_target(mozart), &NavigateOptions::default()).unwrap();
        let headers: Vec<&str> = table.columns.iter().map(|(h, _)| h.as_str()).collect();
        assert_eq!(headers, vec!["COMPOSED-BY", "FATHER-OF", "LIKES"]);
        assert_eq!(table.columns[0].1, vec!["PC#9-WAM".to_string()]);
    }

    #[test]
    fn association_browsing_with_paths() {
        // The paper's (LEOPOLD, *, MOZART): direct FATHER-OF plus the
        // composed FAVORITE-MUSIC path does not apply to LEOPOLD, but the
        // JOHN→MOZART association shows both a direct and a composed path.
        let mut db = music_db();
        let john = db.lookup_symbol("JOHN").unwrap();
        let mozart = db.lookup_symbol("MOZART").unwrap();
        let view = db.view().unwrap();
        let table = navigate(
            &view,
            Pattern::new(Some(john), None, Some(mozart)),
            &NavigateOptions::default(),
        )
        .unwrap();
        let headers: Vec<&str> = table.columns.iter().map(|(h, _)| h.as_str()).collect();
        assert!(headers.contains(&"LIKES"));
        assert!(headers.contains(&"FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY"));
    }

    #[test]
    fn paths_between_respects_limit_and_simplicity() {
        let mut db = Database::new();
        db.add("A", "R1", "B");
        db.add("B", "R2", "C");
        db.add("C", "R3", "D");
        db.add("B", "R4", "D");
        let a = db.lookup_symbol("A").unwrap();
        let d = db.lookup_symbol("D").unwrap();
        let view = db.view().unwrap();
        let paths2 = paths_between(&view, a, d, 2).unwrap();
        assert_eq!(paths2.len(), 1); // A-R1-B-R4-D
        assert_eq!(paths2[0].display(view.interner()), "R1.B.R4");
        let paths3 = paths_between(&view, a, d, 3).unwrap();
        assert_eq!(paths3.len(), 2); // + A-R1-B-R2-C-R3-D
    }

    #[test]
    fn paths_exclude_direct_hops_and_cycles() {
        let mut db = Database::new();
        db.add("JOHN", "LOVES", "MARY");
        db.add("MARY", "LOVES", "JOHN");
        let john = db.lookup_symbol("JOHN").unwrap();
        let mary = db.lookup_symbol("MARY").unwrap();
        let view = db.view().unwrap();
        // Single-hop "paths" are direct relationships, not compositions;
        // the 2-cycle must not generate infinite paths.
        let paths = paths_between(&view, john, mary, 5).unwrap();
        assert!(paths.is_empty());
    }

    #[test]
    fn relationship_pattern_tabulates_pairs() {
        let mut db = Database::new();
        db.add("TOM", "ENROLLED-IN", "CS100");
        db.add("SUE", "ENROLLED-IN", "MATH101");
        let enrolled = db.lookup_symbol("ENROLLED-IN").unwrap();
        let view = db.view().unwrap();
        let table =
            navigate(&view, Pattern::from_rel(enrolled), &NavigateOptions::default()).unwrap();
        assert_eq!(table.columns.len(), 2);
        assert_eq!(table.columns[0].0, "source");
        assert_eq!(table.columns[0].1.len(), 2);
    }

    #[test]
    fn try_operator_covers_all_positions() {
        let mut db = Database::new();
        db.add("JOHN", "LIKES", "FELIX");
        db.add("MARY", "LIKES", "JOHN");
        db.add("TOM", "JOHN", "X"); // JOHN used as a relationship (legal!)
        let john = db.lookup_symbol("JOHN").unwrap();
        let view = db.view().unwrap();
        let table = try_entity(&view, john).unwrap();
        let headers: Vec<&str> = table.columns.iter().map(|(h, _)| h.as_str()).collect();
        assert_eq!(headers, vec!["as source", "as relationship", "as target"]);
        assert!(table.columns[0].1[0].contains("(JOHN, LIKES, FELIX)"));
        assert!(table.columns[1].1[0].contains("(TOM, JOHN, X)"));
        assert!(table.columns[2].1[0].contains("(MARY, LIKES, JOHN)"));
    }

    #[test]
    fn semantic_distance_paper_notion() {
        let mut db = Database::new();
        db.add("JOHN", "FAVORITE-MUSIC", "PC9");
        db.add("PC9", "COMPOSED-BY", "MOZART");
        db.add("MOZART", "BORN-IN", "SALZBURG");
        db.add("JOHN", "ADMIRES", "MOZART"); // a shortcut
        let id = |db: &Database, n: &str| db.lookup_symbol(n).unwrap();
        let (john, pc9, mozart, salzburg) =
            (id(&db, "JOHN"), id(&db, "PC9"), id(&db, "MOZART"), id(&db, "SALZBURG"));
        let view = db.view().unwrap();
        assert_eq!(semantic_distance(&view, john, john, 5).unwrap(), Some(0));
        assert_eq!(semantic_distance(&view, john, pc9, 5).unwrap(), Some(1));
        // The shortcut wins over the two-hop composition.
        assert_eq!(semantic_distance(&view, john, mozart, 5).unwrap(), Some(1));
        assert_eq!(semantic_distance(&view, john, salzburg, 5).unwrap(), Some(2));
        // Direction matters: nothing leads back to JOHN.
        assert_eq!(semantic_distance(&view, salzburg, john, 5).unwrap(), None);
        // The bound is respected.
        assert_eq!(semantic_distance(&view, john, salzburg, 1).unwrap(), None);
    }

    #[test]
    fn unknown_entity_navigates_to_empty_table() {
        let mut db = music_db();
        let ghost = db.entity("GHOST");
        let view = db.view().unwrap();
        let table =
            navigate(&view, Pattern::from_source(ghost), &NavigateOptions::default()).unwrap();
        assert!(table.is_empty());
    }

    #[test]
    fn truncation_caps_long_columns() {
        let mut db = Database::new();
        for i in 0..100 {
            db.add("HUB", "LINKS", format!("T{i:03}"));
        }
        let hub = db.lookup_symbol("HUB").unwrap();
        let view = db.view().unwrap();
        let opts = NavigateOptions { path_limit: 1, max_cells: 10 };
        let table = navigate(&view, Pattern::from_source(hub), &opts).unwrap();
        let cells = &table.columns[0].1;
        assert_eq!(cells.len(), 11);
        assert_eq!(cells.last().unwrap(), "…");
    }
}
