//! An interactive browsing session.
//!
//! §4.1: "navigation and querying may be interleaved — a user may submit a
//! complex query, and use the answer as a starting point for browsing."
//! [`Session`] owns a [`Database`] and offers every retrieval mode through
//! one object: navigation with focus history, standard queries, probing
//! with automatic retraction, the `try` operator, `relation(...)` views
//! and the definition facility.

use std::time::Instant;

use loosedb_engine::{ClosureError, Database, MathMatchError, TransactionError};
use loosedb_query::{plan_and_eval_stats, Answer, EvalError, ParseError};
use loosedb_store::{EntityId, EntityValue, Pattern};

use crate::navigate::{navigate, try_entity, NavigateOptions};
use crate::operators::{relation, DefineError, Definitions, RelationTable};
use crate::probe::{probe, ProbeOptions, ProbeReport};
use crate::table::GroupedTable;

/// Errors from session operations.
#[derive(Debug)]
pub enum SessionError {
    /// Query text did not parse.
    Parse(ParseError),
    /// Closure computation failed.
    Closure(ClosureError),
    /// Query evaluation failed.
    Eval(EvalError),
    /// A mathematical pattern could not be enumerated.
    Math(MathMatchError),
    /// A name used for navigation is not an interned entity.
    UnknownEntity(String),
    /// Operator definition/invocation failed.
    Define(DefineError),
    /// A transactional update was rejected.
    Transaction(TransactionError),
    /// There is no earlier focus to go back to.
    NoHistory,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Closure(e) => write!(f, "{e}"),
            SessionError::Eval(e) => write!(f, "{e}"),
            SessionError::Math(e) => write!(f, "{e}"),
            SessionError::UnknownEntity(name) => write!(f, "unknown entity {name:?}"),
            SessionError::Define(e) => write!(f, "{e}"),
            SessionError::Transaction(e) => write!(f, "{e}"),
            SessionError::NoHistory => write!(f, "no earlier focus in this session"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}
impl From<ClosureError> for SessionError {
    fn from(e: ClosureError) -> Self {
        SessionError::Closure(e)
    }
}
impl From<EvalError> for SessionError {
    fn from(e: EvalError) -> Self {
        SessionError::Eval(e)
    }
}
impl From<MathMatchError> for SessionError {
    fn from(e: MathMatchError) -> Self {
        SessionError::Math(e)
    }
}
impl From<DefineError> for SessionError {
    fn from(e: DefineError) -> Self {
        SessionError::Define(e)
    }
}
impl From<TransactionError> for SessionError {
    fn from(e: TransactionError) -> Self {
        SessionError::Transaction(e)
    }
}

/// A browsing session over a database.
pub struct Session {
    db: Database,
    defs: Definitions,
    /// Options used for navigation displays.
    pub nav_opts: NavigateOptions,
    /// Options used for probing.
    pub probe_opts: ProbeOptions,
    history: Vec<EntityId>,
}

impl Session {
    /// Starts a session over a database.
    pub fn new(db: Database) -> Self {
        Session {
            db,
            defs: Definitions::new(),
            nav_opts: NavigateOptions::default(),
            probe_opts: ProbeOptions::default(),
            history: Vec::new(),
        }
    }

    /// Read access to the database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the database (facts may be edited mid-session;
    /// the closure refreshes lazily).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Consumes the session, returning the database.
    pub fn into_db(self) -> Database {
        self.db
    }

    fn resolve(&self, name: &str) -> Result<EntityId, SessionError> {
        if name == "*" {
            return Err(SessionError::UnknownEntity("*".into()));
        }
        // Numbers resolve to number entities; anything else is a symbol.
        let value = if let Ok(i) = name.parse::<i64>() {
            EntityValue::Int(i)
        } else if let Ok(x) = name.parse::<f64>() {
            EntityValue::float(x)
        } else {
            EntityValue::symbol(name)
        };
        self.db.lookup(&value).ok_or_else(|| SessionError::UnknownEntity(name.to_string()))
    }

    fn part(&self, name: &str) -> Result<Option<EntityId>, SessionError> {
        if name == "*" {
            Ok(None)
        } else {
            self.resolve(name).map(Some)
        }
    }

    /// Focuses on an entity: renders its neighborhood `(E, *, *)` and
    /// pushes it on the focus history.
    pub fn focus(&mut self, name: &str) -> Result<GroupedTable, SessionError> {
        let e = self.resolve(name)?;
        let table = {
            let view = self.db.view()?;
            let start = Instant::now();
            let table = navigate(&view, Pattern::from_source(e), &self.nav_opts)?;
            self.record_nav(start);
            table
        };
        self.history.push(e);
        Ok(table)
    }

    /// Returns to the previous focus, re-rendering its neighborhood.
    pub fn back(&mut self) -> Result<GroupedTable, SessionError> {
        if self.history.len() < 2 {
            return Err(SessionError::NoHistory);
        }
        self.history.pop();
        let e = *self.history.last().expect("non-empty");
        let view = self.db.view()?;
        let start = Instant::now();
        let table = navigate(&view, Pattern::from_source(e), &self.nav_opts)?;
        self.record_nav(start);
        Ok(table)
    }

    fn record_nav(&self, start: Instant) {
        let m = self.db.metrics();
        m.nav_builds.inc();
        m.nav_build_ns.record_duration(start.elapsed());
    }

    /// The focus history, oldest first.
    pub fn history(&self) -> &[EntityId] {
        &self.history
    }

    /// Navigates an arbitrary template given as three names (`"*"` for a
    /// free position), e.g. `navigate_parts("LEOPOLD", "*", "MOZART")`.
    pub fn navigate_parts(
        &mut self,
        s: &str,
        r: &str,
        t: &str,
    ) -> Result<GroupedTable, SessionError> {
        let pattern = Pattern::new(self.part(s)?, self.part(r)?, self.part(t)?);
        let view = self.db.view()?;
        let start = Instant::now();
        let table = navigate(&view, pattern, &self.nav_opts)?;
        self.record_nav(start);
        Ok(table)
    }

    /// Evaluates a standard query (§2.7) given in the textual syntax.
    pub fn query(&mut self, src: &str) -> Result<Answer, SessionError> {
        let expanded = self.maybe_expand(src)?;
        let query = loosedb_query::parse(&expanded, self.db.store_interner_mut())?;
        let eval_opts = self.probe_opts.eval;
        let view = self.db.view()?;
        let start = Instant::now();
        let (answer, _, stats) = plan_and_eval_stats(&query, &view, eval_opts)?;
        let m = self.db.metrics();
        m.query_evals.inc();
        m.query_eval_ns.record_duration(start.elapsed());
        m.query_rows.record(answer.len() as u64);
        m.strategy_hash.add(stats.strategy_hash);
        m.strategy_nested.add(stats.strategy_nested);
        m.join_partitions.add(stats.partitions);
        Ok(answer)
    }

    /// Probes a query (§5): evaluates it and, on failure, runs automatic
    /// retraction.
    pub fn probe(&mut self, src: &str) -> Result<ProbeReport, SessionError> {
        let expanded = self.maybe_expand(src)?;
        let query = loosedb_query::parse(&expanded, self.db.store_interner_mut())?;
        let probe_opts = self.probe_opts;
        let view = self.db.view()?;
        let report = probe(&query, &view, &probe_opts);
        crate::shared::record_probe(self.db.metrics(), &report);
        Ok(report)
    }

    /// The §6.1 `try(e)` operator.
    pub fn try_entity(&mut self, name: &str) -> Result<GroupedTable, SessionError> {
        let e = self.resolve(name)?;
        let view = self.db.view()?;
        Ok(try_entity(&view, e)?)
    }

    /// The §6.1 `relation(s, r1 t1, …)` operator, by entity names.
    pub fn relation(
        &mut self,
        class: &str,
        columns: &[(&str, &str)],
    ) -> Result<RelationTable, SessionError> {
        let class = self.resolve(class)?;
        let cols: Vec<(EntityId, EntityId)> = columns
            .iter()
            .map(|(r, t)| Ok((self.resolve(r)?, self.resolve(t)?)))
            .collect::<Result<_, SessionError>>()?;
        let view = self.db.view()?;
        Ok(relation(&view, class, &cols)?)
    }

    /// Renders the evaluation plan of a query without executing it.
    pub fn explain_query(&mut self, src: &str) -> Result<String, SessionError> {
        let expanded = self.maybe_expand(src)?;
        let query = loosedb_query::parse(&expanded, self.db.store_interner_mut())?;
        let view = self.db.view()?;
        Ok(loosedb_query::explain_plan(&query, &view))
    }

    /// The functional view of a relationship (§6.1), optionally
    /// restricted to targets of a class.
    pub fn function(
        &mut self,
        rel: &str,
        target_class: Option<&str>,
    ) -> Result<crate::operators::FunctionView, SessionError> {
        let rel = self.resolve(rel)?;
        let class = target_class.map(|c| self.resolve(c)).transpose()?;
        let view = self.db.view()?;
        Ok(crate::operators::function(&view, rel, class)?)
    }

    /// Defines a named operator (§6 definition facility).
    pub fn define(&mut self, name: &str, arity: usize, body: &str) -> Result<(), SessionError> {
        Ok(self.defs.define(name, arity, body)?)
    }

    /// Expands `name(arg1; arg2; …)` invocations; plain query text passes
    /// through.
    fn maybe_expand(&self, src: &str) -> Result<String, SessionError> {
        Ok(self.defs.maybe_expand(src)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        let mut db = Database::new();
        db.add("JOHN", "isa", "EMPLOYEE");
        db.add("JOHN", "LIKES", "FELIX");
        db.add("JOHN", "FAVORITE-MUSIC", "PC#9-WAM");
        db.add("PC#9-WAM", "COMPOSED-BY", "MOZART");
        db.add("JOHN", "EARNS", 25000i64);
        Session::new(db)
    }

    #[test]
    fn focus_and_history() {
        let mut s = session();
        let t1 = s.focus("JOHN").unwrap();
        assert!(t1.title_cells.contains(&"EMPLOYEE".to_string()));
        let t2 = s.focus("PC#9-WAM").unwrap();
        assert!(t2.to_string().contains("MOZART"));
        assert_eq!(s.history().len(), 2);
        let t3 = s.back().unwrap();
        assert!(t3.title_cells.contains(&"EMPLOYEE".to_string()));
        assert_eq!(s.history().len(), 1);
        assert!(matches!(s.back(), Err(SessionError::NoHistory)));
    }

    #[test]
    fn unknown_entity_is_an_error_not_a_crash() {
        let mut s = session();
        assert!(matches!(s.focus("NOBODY"), Err(SessionError::UnknownEntity(_))));
    }

    #[test]
    fn numeric_focus() {
        let mut s = session();
        let table = s.try_entity("25000").unwrap();
        assert!(table.to_string().contains("(JOHN, EARNS, 25000)"));
    }

    #[test]
    fn navigation_and_query_interleave() {
        let mut s = session();
        s.focus("JOHN").unwrap();
        let answer = s.query("(?x, COMPOSED-BY, MOZART)").unwrap();
        assert_eq!(answer.len(), 1);
        // Use the answer as the next focus (§4.1's interleaving).
        let next = answer.single_column().unwrap()[0];
        let name = s.db().display(next);
        let table = s.focus(&name).unwrap();
        assert!(table.to_string().contains("COMPOSED-BY"));
    }

    #[test]
    fn probing_through_session() {
        let mut s = session();
        s.db_mut().add("ADORES", "gen", "LIKES");
        let report = s.probe("(JOHN, ADORES, ?x)").unwrap();
        // (JOHN, ADORES, ?x) fails; generalizing ADORES → LIKES succeeds.
        let menu = report.render_menu(s.db().store().interner());
        assert!(menu.contains("with LIKES instead of ADORES"), "{menu}");
    }

    #[test]
    fn defined_operators_invoke() {
        let mut s = session();
        s.define("earns-more", 1, "Q(?x) := exists ?y . (?x, EARNS, ?y) & (?y, >, $1)").unwrap();
        let yes = s.query("earns-more(20000)").unwrap();
        assert_eq!(yes.len(), 1);
        let no = s.query("earns-more(30000)").unwrap();
        assert!(no.is_empty());
    }

    #[test]
    fn plain_queries_unaffected_by_expansion() {
        let mut s = session();
        s.define("f", 0, "(JOHN, LIKES, FELIX)").unwrap();
        // "Q(...)" header must not be mistaken for an operator call.
        let answer = s.query("Q(?x) := (JOHN, LIKES, ?x)").unwrap();
        assert_eq!(answer.len(), 1);
        // And the defined operator works.
        assert!(s.query("f()").unwrap().is_true());
    }

    #[test]
    fn explain_query_through_session() {
        let mut s = session();
        let plan =
            s.explain_query("Q(?x) := exists ?y . (?x, EARNS, ?y) & (?y, >, 20000)").unwrap();
        assert!(plan.contains("join"), "{plan}");
        assert!(plan.contains("EARNS"), "{plan}");
    }

    #[test]
    fn function_through_session() {
        let mut s = session();
        let f = s.function("COMPOSED-BY", None).unwrap();
        assert!(f.is_function());
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn relation_through_session() {
        let mut s = session();
        s.db_mut().add("SHIPPING", "isa", "DEPARTMENT");
        s.db_mut().add("JOHN", "WORKS-FOR", "SHIPPING");
        let table = s.relation("EMPLOYEE", &[("WORKS-FOR", "DEPARTMENT")]).unwrap();
        assert_eq!(table.rows.len(), 1);
        assert_eq!(table.rows[0].cells[0].len(), 1);
    }

    #[test]
    fn navigate_parts_association() {
        let mut s = session();
        let table = s.navigate_parts("JOHN", "*", "MOZART").unwrap();
        // John relates to Mozart through the favorite-music path.
        assert!(table.columns.iter().any(|(h, _)| h == "FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY"));
    }
}
