//! Browsing sessions over a sharded database.
//!
//! [`ShardedSession`] is the scatter-gather counterpart of
//! [`crate::SharedSession`]: it reads an `Arc<ShardedDatabase>`, takes a
//! per-shard snapshot vector per operation, and evaluates navigation,
//! probing and queries through the query layer's scatter machinery —
//! collocated queries fan out whole to every shard, everything else runs
//! over the deduplicating [`UnionView`].
//!
//! The session keeps the same two caches as [`crate::SharedSession`],
//! re-keyed for N generation chains:
//!
//! * The **cache epoch** is the *sum* of the per-shard epochs — monotone
//!   (every publish raises exactly one shard's epoch) and equal only
//!   when no shard moved, so it is a sound scalar stand-in for the
//!   vector.
//! * **Invalidation** merges the per-shard delta rings
//!   ([`ShardedDatabase::delta_between`]) across the span since the last
//!   roll: when every shard's span is precise the union of touched
//!   relationships drives the same dependency-disjointness carry-over as
//!   the single-store session; any imprecise shard degrades to a full
//!   drop (answers) or a stale-mark (plans).

use std::sync::Arc;
use std::time::Instant;

use loosedb_engine::{DeltaSummary, ShardedDatabase, ShardedSnapshot, Taxonomy};
use loosedb_query::{
    eval_sharded, eval_sharded_planned, Answer, AtomOrdering, FrozenParseError, PlanCache,
    PlanCacheStats, Query, ScatterMetrics, UnionView,
};
use loosedb_store::{EntityId, EntityValue, Interner, Pattern};

use crate::navigate::{navigate, try_entity, NavigateOptions};
use crate::operators::{relation, Definitions, FunctionView, RelationTable};
use crate::probe::{probe_with_taxonomy, ProbeOptions, ProbeReport};
use crate::session::SessionError;
use crate::shared::{dependency_rels, record_probe, CacheStats, QueryCache};
use crate::table::GroupedTable;

/// A private extension of the sharded snapshot's aligned interner, for
/// query constants no shard has interned. Keyed on the summed epoch
/// vector: any publish may intern new entities, so the extension is
/// rebuilt whenever any shard moves.
struct ExtInterner {
    epoch_sum: u64,
    interner: Interner,
}

/// Parses `src` against a sharded snapshot, extending the private
/// interner only when the text mentions unknown constants (the sharded
/// analogue of the shared session's frozen-parse fallback).
fn parse_on<'a>(
    ext: &'a mut Option<ExtInterner>,
    snap: &'a ShardedSnapshot,
    epoch_sum: u64,
    src: &str,
) -> Result<(Query, &'a Interner), SessionError> {
    match loosedb_query::parse_frozen(src, snap.interner()) {
        Ok(query) => Ok((query, snap.interner())),
        Err(FrozenParseError::Parse(e)) => Err(SessionError::Parse(e)),
        Err(FrozenParseError::UnknownConstant { .. }) => {
            let stale = ext.as_ref().is_none_or(|e| e.epoch_sum != epoch_sum);
            if stale {
                *ext = Some(ExtInterner { epoch_sum, interner: snap.interner().clone() });
            }
            let interner = &mut ext.as_mut().expect("just ensured").interner;
            let query = loosedb_query::parse(src, interner)?;
            Ok((query, &*interner))
        }
    }
}

/// A browsing session over a [`ShardedDatabase`]: the scatter-gather
/// counterpart of [`crate::SharedSession`].
///
/// Every operation snapshots all shards once and evaluates against that
/// vector; per-shard snapshots are individually consistent and epochs
/// never go backwards.
pub struct ShardedSession {
    sharded: Arc<ShardedDatabase>,
    defs: Definitions,
    /// Options used for navigation displays.
    pub nav_opts: NavigateOptions,
    /// Options used for probing.
    pub probe_opts: ProbeOptions,
    history: Vec<EntityId>,
    ext: Option<ExtInterner>,
    cache: QueryCache,
    plans: PlanCache,
    /// The epoch vector the caches were last rolled to.
    epochs: Vec<u64>,
    scatter: ScatterMetrics,
}

/// Default query-cache capacity (entries) for a session.
const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Default plan-cache capacity (distinct query shapes) for a session.
const DEFAULT_PLAN_CAPACITY: usize = 64;

impl ShardedSession {
    /// Starts a session over a sharded database.
    pub fn new(sharded: Arc<ShardedDatabase>) -> Self {
        Self::with_cache_capacity(sharded, DEFAULT_CACHE_CAPACITY)
    }

    /// Starts a session with a specific query-cache capacity (0 disables
    /// caching).
    pub fn with_cache_capacity(sharded: Arc<ShardedDatabase>, capacity: usize) -> Self {
        let metrics = Arc::clone(sharded.metrics());
        let epochs = sharded.epochs();
        ShardedSession {
            scatter: ScatterMetrics::from_metrics(&metrics),
            cache: QueryCache::with_metrics(capacity, metrics.query_cache.clone()),
            plans: PlanCache::with_metrics(DEFAULT_PLAN_CAPACITY, metrics.plan_cache.clone()),
            sharded,
            defs: Definitions::new(),
            nav_opts: NavigateOptions::default(),
            probe_opts: ProbeOptions::default(),
            history: Vec::new(),
            ext: None,
            epochs,
        }
    }

    /// The sharded database this session reads from.
    pub fn sharded(&self) -> &Arc<ShardedDatabase> {
        &self.sharded
    }

    /// A fresh snapshot of every shard (what the next operation would
    /// use).
    pub fn snapshot(&self) -> ShardedSnapshot {
        self.sharded.snapshot()
    }

    /// The per-shard epochs of the current snapshot.
    pub fn epochs(&self) -> Vec<u64> {
        self.sharded.epochs()
    }

    /// Hit/miss counters of this session's query cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Hit/miss counters of this session's plan cache.
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// The focus history, oldest first.
    pub fn history(&self) -> &[EntityId] {
        &self.history
    }

    fn resolve(&self, snap: &ShardedSnapshot, name: &str) -> Result<EntityId, SessionError> {
        if name == "*" {
            return Err(SessionError::UnknownEntity("*".into()));
        }
        let value = if let Ok(i) = name.parse::<i64>() {
            EntityValue::Int(i)
        } else if let Ok(x) = name.parse::<f64>() {
            EntityValue::float(x)
        } else {
            EntityValue::symbol(name)
        };
        snap.lookup(&value).ok_or_else(|| SessionError::UnknownEntity(name.to_string()))
    }

    fn part(&self, snap: &ShardedSnapshot, name: &str) -> Result<Option<EntityId>, SessionError> {
        if name == "*" {
            Ok(None)
        } else {
            self.resolve(snap, name).map(Some)
        }
    }

    /// Rolls the answer and plan caches up to the given epoch vector,
    /// merging the per-shard delta rings for precise carry-over.
    fn roll_caches(&mut self, epochs: &[u64]) {
        if epochs == self.epochs.as_slice() {
            return;
        }
        let scalar: u64 = epochs.iter().sum();
        match self.sharded.delta_between(&self.epochs, epochs) {
            DeltaSummary::Precise(changed) => {
                self.cache.roll_with(scalar, Some(&changed));
                self.plans.roll(scalar, Some(&changed));
            }
            DeltaSummary::FullAt(_) => {
                self.cache.roll_with(scalar, None);
                // A full publish at a known epoch: answers drop, but
                // structurally tracked plans survive as stale — a stale
                // join order costs performance, never correctness.
                self.plans.roll_stale(scalar);
            }
            DeltaSummary::Unknown => {
                self.cache.roll_with(scalar, None);
                self.plans.roll(scalar, None);
            }
        }
        self.epochs = epochs.to_vec();
    }

    fn record_nav(&self, start: Instant) {
        let m = self.sharded.metrics();
        m.nav_builds.inc();
        m.nav_build_ns.record_duration(start.elapsed());
    }

    /// Focuses on an entity: renders its neighborhood `(E, *, *)` over
    /// the union of all shards and pushes it on the focus history.
    pub fn focus(&mut self, name: &str) -> Result<GroupedTable, SessionError> {
        let snap = self.sharded.snapshot();
        let e = self.resolve(&snap, name)?;
        let start = Instant::now();
        let views = snap.views();
        let union = UnionView::new(&views, snap.interner()).with_metrics(self.scatter.clone());
        let table = navigate(&union, Pattern::from_source(e), &self.nav_opts)?;
        self.record_nav(start);
        self.history.push(e);
        Ok(table)
    }

    /// Returns to the previous focus, re-rendering its neighborhood
    /// against the *current* snapshot.
    pub fn back(&mut self) -> Result<GroupedTable, SessionError> {
        if self.history.len() < 2 {
            return Err(SessionError::NoHistory);
        }
        self.history.pop();
        let e = *self.history.last().expect("non-empty");
        let snap = self.sharded.snapshot();
        let start = Instant::now();
        let views = snap.views();
        let union = UnionView::new(&views, snap.interner()).with_metrics(self.scatter.clone());
        let table = navigate(&union, Pattern::from_source(e), &self.nav_opts)?;
        self.record_nav(start);
        Ok(table)
    }

    /// Navigates an arbitrary template given as three names (`"*"` for a
    /// free position).
    pub fn navigate_parts(
        &mut self,
        s: &str,
        r: &str,
        t: &str,
    ) -> Result<GroupedTable, SessionError> {
        let snap = self.sharded.snapshot();
        let pattern =
            Pattern::new(self.part(&snap, s)?, self.part(&snap, r)?, self.part(&snap, t)?);
        let start = Instant::now();
        let views = snap.views();
        let union = UnionView::new(&views, snap.interner()).with_metrics(self.scatter.clone());
        let table = navigate(&union, pattern, &self.nav_opts)?;
        self.record_nav(start);
        Ok(table)
    }

    /// Evaluates a standard query across all shards. Collocated queries
    /// (every ordinary atom sharing one source term) scatter whole and
    /// gather per-shard answers; everything else evaluates over the
    /// union view. Answers are cached per expanded text and carried over
    /// publishes whose merged delta is disjoint from their dependency
    /// relationships, exactly as in [`crate::SharedSession`].
    pub fn query(&mut self, src: &str) -> Result<Arc<Answer>, SessionError> {
        let expanded = self.defs.maybe_expand(src)?;
        let snap = self.sharded.snapshot();
        let epochs = snap.epochs();
        let epoch_sum: u64 = epochs.iter().sum();
        self.roll_caches(&epochs);
        if let Some(hit) = self.cache.get(&expanded) {
            return Ok(hit);
        }
        let eval_opts = self.probe_opts.eval;
        let (query, interner) = parse_on(&mut self.ext, &snap, epoch_sum, &expanded)?;
        let deps = dependency_rels(&query, snap.interner().len());
        let views = snap.views_with_interner(interner);
        let start = Instant::now();
        let (answer, stats) = if eval_opts.ordering == AtomOrdering::Greedy {
            match self.plans.get(&query, &eval_opts) {
                Some(plan) => {
                    let (answer, stats, _) = eval_sharded_planned(
                        &query,
                        &views,
                        interner,
                        eval_opts,
                        &plan,
                        Some(&self.scatter),
                    )?;
                    (Arc::new(answer), stats)
                }
                None => {
                    let out =
                        eval_sharded(&query, &views, interner, eval_opts, Some(&self.scatter))?;
                    self.plans.insert(&query, &eval_opts, Arc::new(out.plan));
                    (Arc::new(out.answer), out.stats)
                }
            }
        } else {
            let out = eval_sharded(&query, &views, interner, eval_opts, Some(&self.scatter))?;
            (Arc::new(out.answer), out.stats)
        };
        let m = self.sharded.metrics();
        m.query_evals.inc();
        m.query_eval_ns.record_duration(start.elapsed());
        m.query_rows.record(answer.len() as u64);
        m.strategy_hash.add(stats.strategy_hash);
        m.strategy_nested.add(stats.strategy_nested);
        m.join_partitions.add(stats.partitions);
        self.cache.insert(expanded, Arc::clone(&answer), deps);
        Ok(answer)
    }

    /// Probes a query (§5) across all shards: the `≺` taxonomy comes
    /// from shard 0 (structural facts are broadcast, so every shard's
    /// taxonomy is the global one) and attempts evaluate over the union
    /// view.
    pub fn probe(&mut self, src: &str) -> Result<ProbeReport, SessionError> {
        let expanded = self.defs.maybe_expand(src)?;
        let snap = self.sharded.snapshot();
        let epoch_sum: u64 = snap.epochs().iter().sum();
        let probe_opts = self.probe_opts;
        let (query, interner) = parse_on(&mut self.ext, &snap, epoch_sum, &expanded)?;
        let views = snap.views_with_interner(interner);
        let union = UnionView::new(&views, interner).with_metrics(self.scatter.clone());
        let taxonomy = Taxonomy::new(snap.generations()[0].closure());
        let report = probe_with_taxonomy(&query, &union, &taxonomy, &probe_opts);
        record_probe(self.sharded.metrics(), &report);
        Ok(report)
    }

    /// Renders a probe report's §5.2 menu under the interner its ids
    /// were actually resolved against (the sharded analogue of
    /// [`crate::SharedSession::render_probe`]). Reports whose probe text
    /// mentioned constants unknown to every shard carry ids minted by
    /// the session's private extension interner, which the bare snapshot
    /// interner cannot resolve.
    pub fn render_probe(&self, report: &ProbeReport) -> String {
        let snap = self.sharded.snapshot();
        let epoch_sum: u64 = snap.epochs().iter().sum();
        match &self.ext {
            Some(e) if e.epoch_sum == epoch_sum => report.render_menu(&e.interner),
            _ => report.render_menu(snap.interner()),
        }
    }

    /// Renders an answer's rows as display strings under the interner
    /// its ids were actually resolved against (the sharded analogue of
    /// [`crate::SharedSession::render_answer`]).
    pub fn render_answer(&self, answer: &Answer) -> Vec<Vec<String>> {
        let snap = self.sharded.snapshot();
        let epoch_sum: u64 = snap.epochs().iter().sum();
        let ext = match &self.ext {
            Some(e) if e.epoch_sum == epoch_sum => Some(&e.interner),
            _ => None,
        };
        let interner = ext.unwrap_or_else(|| snap.interner());
        answer.rows.iter().map(|row| row.iter().map(|&e| interner.display(e)).collect()).collect()
    }

    /// The §6.1 `try(e)` operator over the union of all shards.
    pub fn try_entity(&mut self, name: &str) -> Result<GroupedTable, SessionError> {
        let snap = self.sharded.snapshot();
        let e = self.resolve(&snap, name)?;
        let views = snap.views();
        let union = UnionView::new(&views, snap.interner()).with_metrics(self.scatter.clone());
        Ok(try_entity(&union, e)?)
    }

    /// The §6.1 `relation(s, r1 t1, …)` operator, by entity names.
    pub fn relation(
        &mut self,
        class: &str,
        columns: &[(&str, &str)],
    ) -> Result<RelationTable, SessionError> {
        let snap = self.sharded.snapshot();
        let class = self.resolve(&snap, class)?;
        let cols: Vec<(EntityId, EntityId)> = columns
            .iter()
            .map(|(r, t)| Ok((self.resolve(&snap, r)?, self.resolve(&snap, t)?)))
            .collect::<Result<_, SessionError>>()?;
        let views = snap.views();
        let union = UnionView::new(&views, snap.interner()).with_metrics(self.scatter.clone());
        Ok(relation(&union, class, &cols)?)
    }

    /// The functional view of a relationship (§6.1), optionally
    /// restricted to targets of a class.
    pub fn function(
        &mut self,
        rel: &str,
        target_class: Option<&str>,
    ) -> Result<FunctionView, SessionError> {
        let snap = self.sharded.snapshot();
        let rel = self.resolve(&snap, rel)?;
        let class = target_class.map(|c| self.resolve(&snap, c)).transpose()?;
        let views = snap.views();
        let union = UnionView::new(&views, snap.interner()).with_metrics(self.scatter.clone());
        Ok(crate::operators::function(&union, rel, class)?)
    }

    /// Renders the evaluation plan of a query over the union view
    /// without executing it.
    pub fn explain_query(&mut self, src: &str) -> Result<String, SessionError> {
        let expanded = self.defs.maybe_expand(src)?;
        let snap = self.sharded.snapshot();
        let epoch_sum: u64 = snap.epochs().iter().sum();
        let (query, interner) = parse_on(&mut self.ext, &snap, epoch_sum, &expanded)?;
        let views = snap.views_with_interner(interner);
        let union = UnionView::new(&views, interner);
        Ok(loosedb_query::explain_plan(&query, &union))
    }

    /// Defines a named operator (§6 definition facility). Definitions
    /// are session-private.
    pub fn define(&mut self, name: &str, arity: usize, body: &str) -> Result<(), SessionError> {
        Ok(self.defs.define(name, arity, body)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded(n: usize) -> Arc<ShardedDatabase> {
        let db = ShardedDatabase::new(n).unwrap();
        db.insert("JOHN", "isa", "EMPLOYEE").unwrap();
        db.insert("JOHN", "LIKES", "FELIX").unwrap();
        db.insert("JOHN", "FAVORITE-MUSIC", "PC#9-WAM").unwrap();
        db.insert("PC#9-WAM", "COMPOSED-BY", "MOZART").unwrap();
        db.insert("JOHN", "EARNS", 25000i64).unwrap();
        Arc::new(db)
    }

    #[test]
    fn focus_query_and_history() {
        let mut s = ShardedSession::new(sharded(4));
        let t1 = s.focus("JOHN").unwrap();
        assert!(t1.title_cells.contains(&"EMPLOYEE".to_string()));
        s.focus("PC#9-WAM").unwrap();
        assert_eq!(s.history().len(), 2);
        let t3 = s.back().unwrap();
        assert!(t3.title_cells.contains(&"EMPLOYEE".to_string()));

        let answer = s.query("(?x, COMPOSED-BY, MOZART)").unwrap();
        assert_eq!(answer.len(), 1);
    }

    #[test]
    fn unknown_constants_fall_back_to_extension_interner() {
        let mut s = ShardedSession::new(sharded(3));
        let none = s.query("Q(?x) := (?x, EARNS, 30000)").unwrap();
        assert!(none.is_empty());
        let one = s.query("Q(?x) := (?x, EARNS, 25000)").unwrap();
        assert_eq!(one.len(), 1);
        let cmp = s.query("Q(?x) := exists ?y . (?x, EARNS, ?y) & (?y, >, 20000)").unwrap();
        assert_eq!(cmp.len(), 1);
    }

    #[test]
    fn cache_serves_repeats_and_rolls_on_writes() {
        let db = sharded(4);
        let mut s = ShardedSession::new(Arc::clone(&db));
        let a1 = s.query("(JOHN, LIKES, ?x)").unwrap();
        let a2 = s.query("(JOHN, LIKES, ?x)").unwrap();
        assert!(Arc::ptr_eq(&a1, &a2), "repeat must be served from cache");
        let stats = s.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        db.insert("JOHN", "LIKES", "MARY").unwrap();
        let a3 = s.query("(JOHN, LIKES, ?x)").unwrap();
        assert_eq!(a3.len(), 2, "new generations must invalidate the cache");
        assert!(!Arc::ptr_eq(&a1, &a3));
    }

    #[test]
    fn cache_carries_answers_over_disjoint_writes() {
        let db = sharded(4);
        let mut s = ShardedSession::new(Arc::clone(&db));
        let likes = s.query("(JOHN, LIKES, ?x)").unwrap();
        let earns = s.query("(JOHN, EARNS, ?x)").unwrap();

        // Touches only FAVORITE-MUSIC — and only MARY's shard; the merged
        // delta ring still reports exactly that rel, so both answers ride.
        db.insert("MARY", "FAVORITE-MUSIC", "PC#9-WAM").unwrap();
        let likes2 = s.query("(JOHN, LIKES, ?x)").unwrap();
        let earns2 = s.query("(JOHN, EARNS, ?x)").unwrap();
        assert!(Arc::ptr_eq(&likes, &likes2), "disjoint write must not evict LIKES");
        assert!(Arc::ptr_eq(&earns, &earns2), "disjoint write must not evict EARNS");
        assert_eq!(s.cache_stats().carried, 2);
    }

    #[test]
    fn sharded_answers_match_shared_session() {
        use loosedb_engine::{Database, SharedDatabase};
        let mut single = Database::new();
        single.add("JOHN", "isa", "EMPLOYEE");
        single.add("JOHN", "LIKES", "FELIX");
        single.add("JOHN", "FAVORITE-MUSIC", "PC#9-WAM");
        single.add("PC#9-WAM", "COMPOSED-BY", "MOZART");
        single.add("JOHN", "EARNS", 25000i64);
        let mut reference =
            crate::SharedSession::new(Arc::new(SharedDatabase::new(single).unwrap()));
        let mut s = ShardedSession::new(sharded(4));
        for q in [
            "(JOHN, LIKES, ?x)",
            "(?x, isa, EMPLOYEE)",
            "Q(?x, ?y) := (?x, FAVORITE-MUSIC, ?y)",
            // Cross-shard join: music's composer lives on another shard.
            "Q(?x, ?c) := exists ?m . (?x, FAVORITE-MUSIC, ?m) & (?m, COMPOSED-BY, ?c)",
        ] {
            let a = s.query(q).unwrap();
            let b = reference.query(q).unwrap();
            assert_eq!(a.len(), b.len(), "{q}");
        }
    }

    #[test]
    fn probe_retracts_through_broadcast_taxonomy() {
        let db = sharded(4);
        let mut s = ShardedSession::new(Arc::clone(&db));
        db.insert("ADORES", "gen", "LIKES").unwrap();
        let report = s.probe("(JOHN, ADORES, ?x)").unwrap();
        let menu = report.render_menu(s.snapshot().interner());
        assert!(menu.contains("with LIKES instead of ADORES"), "{menu}");
    }

    #[test]
    fn render_probe_survives_extension_constants() {
        let db = sharded(3);
        let mut s = ShardedSession::new(db);
        // "WORSHIPS" was never interned by any shard: parsing falls back
        // to the session's private extension interner, so the report's
        // ids are unresolvable by the bare aligned snapshot interner and
        // rendering must go through `render_probe`.
        let report = s.probe("(JOHN, WORSHIPS, ?x)").unwrap();
        let menu = s.render_probe(&report);
        assert!(menu.contains("WORSHIPS"), "{menu}");
    }

    #[test]
    fn relation_function_and_explain() {
        let db = sharded(3);
        db.insert("SHIPPING", "isa", "DEPARTMENT").unwrap();
        db.insert("JOHN", "WORKS-FOR", "SHIPPING").unwrap();
        let mut s = ShardedSession::new(db);
        let table = s.relation("EMPLOYEE", &[("WORKS-FOR", "DEPARTMENT")]).unwrap();
        assert_eq!(table.rows.len(), 1);
        let f = s.function("COMPOSED-BY", None).unwrap();
        assert!(f.is_function());
        let plan = s.explain_query("Q(?x) := (?x, WORKS-FOR, SHIPPING)").unwrap();
        assert!(plan.contains("WORKS-FOR"), "{plan}");
    }

    #[test]
    fn defined_operators_expand() {
        let mut s = ShardedSession::new(sharded(2));
        s.define("earns-more", 1, "Q(?x) := exists ?y . (?x, EARNS, ?y) & (?y, >, $1)").unwrap();
        assert_eq!(s.query("earns-more(20000)").unwrap().len(), 1);
        assert!(s.query("earns-more(30000)").unwrap().is_empty());
    }
}
