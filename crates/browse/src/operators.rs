//! The retrieval operators of §6.1.
//!
//! The paper proposes a *definition facility* for new retrieval operators
//! built on the standard query language. Implemented here:
//!
//! * [`relation`] — the structured-view operator
//!   `relation(s, r1 t1, …, rn tn)`: tabulates the instances of `s`
//!   against the listed relationships, producing a (not necessarily first
//!   normal form) relation. This is the paper's demonstration that a heap
//!   of facts "should not prevent structured views of this information".
//! * [`Definitions`] — named, parameterized query macros
//!   (`define wellpaid(?x) := (?x, EARNS, ?y) & (?y, >, $1)`), expanded
//!   textually and parsed with the standard parser.
//!
//! The remaining §6.1 operators live elsewhere: `try(e)` in
//! [`crate::navigate`], `include`/`exclude`/`limit` on
//! [`loosedb_engine::Database`].

use std::collections::BTreeMap;
use std::fmt;

use loosedb_engine::{FactView, MathMatchError};
use loosedb_store::{special, EntityId, Pattern};

/// A non-1NF relation produced by [`relation`]: one row per instance of
/// the class, one column per requested relationship, and any number of
/// entities per cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationTable {
    /// Column headers: the class, then `"REL TARGET-CLASS"` per column.
    pub headers: Vec<String>,
    /// Rows: the instance, then one cell (set of entities) per column.
    pub rows: Vec<RelationRow>,
}

/// One row of a [`RelationTable`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationRow {
    /// The instance of the class (first column).
    pub instance: EntityId,
    /// One cell per relationship column.
    pub cells: Vec<Vec<EntityId>>,
}

impl RelationTable {
    /// Renders the table, flattening non-1NF cells with commas.
    pub fn render(&self, interner: &loosedb_store::Interner) -> String {
        let mut grid: Vec<Vec<String>> = vec![self.headers.clone()];
        for row in &self.rows {
            let mut cells = vec![interner.display(row.instance)];
            for cell in &row.cells {
                let names: Vec<String> = cell.iter().map(|&e| interner.display(e)).collect();
                cells.push(names.join(", "));
            }
            grid.push(cells);
        }
        let cols = self.headers.len();
        let mut widths = vec![0usize; cols];
        for row in &grid {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let mut line = String::new();
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    line.push_str(" | ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[j]));
            }
            out.push_str(line.trim_end());
            out.push('\n');
            if i == 0 {
                for (j, w) in widths.iter().enumerate() {
                    if j > 0 {
                        out.push_str("-+-");
                    }
                    out.push_str(&"-".repeat(*w));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// The §6.1 `relation(s, r1 t1, …, rn tn)` operator.
///
/// Returns one row per instance `y` of `s` (i.e. `(y, ∈, s)` in the
/// closure); the cell for column `(rᵢ, tᵢ)` holds every `z` with
/// `(y, rᵢ, z)` and `(z, ∈, tᵢ)` — the paper's implementation query,
/// evaluated against the closure so inference applies.
pub fn relation<V: FactView>(
    view: &V,
    class: EntityId,
    columns: &[(EntityId, EntityId)],
) -> Result<RelationTable, MathMatchError> {
    let interner = view.interner();
    let mut headers = vec![interner.display(class)];
    for (rel, target_class) in columns {
        headers.push(format!("{} {}", interner.display(*rel), interner.display(*target_class)));
    }

    // Instances of the class, in id order.
    let instances: Vec<EntityId> = view
        .matches(Pattern::new(None, Some(special::ISA), Some(class)))?
        .into_iter()
        .map(|f| f.s)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();

    let mut rows = Vec::with_capacity(instances.len());
    for y in instances {
        let mut cells = Vec::with_capacity(columns.len());
        for (rel, target_class) in columns {
            let mut cell: Vec<EntityId> = view
                .matches(Pattern::new(Some(y), Some(*rel), None))?
                .into_iter()
                .map(|f| f.t)
                .filter(|&z| view.holds(&loosedb_store::Fact::new(z, special::ISA, *target_class)))
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            cell.sort();
            cells.push(cell);
        }
        rows.push(RelationRow { instance: y, cells });
    }
    Ok(RelationTable { headers, rows })
}

/// A functional view of one relationship (§6.1: the heap of facts can be
/// viewed "as if it is structured according to different data models,
/// such as the relational or the functional").
///
/// A relationship is *functional* when every source maps to exactly one
/// target; the view reports the mapping either way, so callers can check
/// [`FunctionView::is_function`] before treating it as one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionView {
    /// The relationship viewed.
    pub rel: EntityId,
    /// Sorted `(source, targets)` pairs; `targets` is sorted and non-empty.
    pub entries: Vec<(EntityId, Vec<EntityId>)>,
}

impl FunctionView {
    /// True if every source maps to exactly one target.
    pub fn is_function(&self) -> bool {
        self.entries.iter().all(|(_, ts)| ts.len() == 1)
    }

    /// The single target for `source`, if the mapping is defined and
    /// single-valued there.
    pub fn apply(&self, source: EntityId) -> Option<EntityId> {
        let i = self.entries.binary_search_by_key(&source, |(s, _)| *s).ok()?;
        let (_, targets) = &self.entries[i];
        if targets.len() == 1 {
            Some(targets[0])
        } else {
            None
        }
    }

    /// All targets for `source` (empty if undefined).
    pub fn image(&self, source: EntityId) -> &[EntityId] {
        self.entries
            .binary_search_by_key(&source, |(s, _)| *s)
            .map(|i| self.entries[i].1.as_slice())
            .unwrap_or(&[])
    }

    /// Number of sources with at least one target.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no source has a target.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Builds the functional view of a relationship over the closure.
///
/// `target_class` restricts targets to instances of a class — necessary
/// over the closure, where membership inference (M2) lifts every target
/// to its classes as well (John works for SHIPPING *and*, existentially,
/// for DEPARTMENT): without the restriction no relationship with
/// classified targets is ever single-valued.
pub fn function<V: FactView>(
    view: &V,
    rel: EntityId,
    target_class: Option<EntityId>,
) -> Result<FunctionView, MathMatchError> {
    let mut map: BTreeMap<EntityId, std::collections::BTreeSet<EntityId>> = BTreeMap::new();
    for f in view.matches(Pattern::from_rel(rel))? {
        if let Some(class) = target_class {
            if !view.holds(&loosedb_store::Fact::new(f.t, special::ISA, class)) {
                continue;
            }
        }
        map.entry(f.s).or_default().insert(f.t);
    }
    Ok(FunctionView {
        rel,
        entries: map.into_iter().map(|(s, ts)| (s, ts.into_iter().collect())).collect(),
    })
}

/// Errors from the definition facility.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DefineError {
    /// No operator with that name was defined.
    Unknown(String),
    /// The invocation passed the wrong number of arguments.
    ArityMismatch {
        /// The operator name.
        name: String,
        /// Parameters the definition declares.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
    /// A definition with that name already exists.
    Duplicate(String),
}

impl fmt::Display for DefineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefineError::Unknown(n) => write!(f, "unknown operator {n:?}"),
            DefineError::ArityMismatch { name, expected, got } => {
                write!(f, "operator {name:?} takes {expected} argument(s), got {got}")
            }
            DefineError::Duplicate(n) => write!(f, "operator {n:?} is already defined"),
        }
    }
}

impl std::error::Error for DefineError {}

/// The §6 definition facility: named query macros with positional
/// parameters `$1 … $n`, expanded textually into standard query syntax.
#[derive(Clone, Debug, Default)]
pub struct Definitions {
    defs: BTreeMap<String, (usize, String)>,
}

impl Definitions {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines an operator. `body` is standard query syntax with `$1`,
    /// `$2`, … placeholders; `arity` is the number of placeholders.
    pub fn define(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        body: impl Into<String>,
    ) -> Result<(), DefineError> {
        let name = name.into();
        if self.defs.contains_key(&name) {
            return Err(DefineError::Duplicate(name));
        }
        self.defs.insert(name, (arity, body.into()));
        Ok(())
    }

    /// Expands an invocation into query source text.
    pub fn expand(&self, name: &str, args: &[&str]) -> Result<String, DefineError> {
        let (arity, body) =
            self.defs.get(name).ok_or_else(|| DefineError::Unknown(name.to_string()))?;
        if args.len() != *arity {
            return Err(DefineError::ArityMismatch {
                name: name.to_string(),
                expected: *arity,
                got: args.len(),
            });
        }
        let mut out = body.clone();
        // Substitute from the highest index down so $12 is not clobbered
        // by $1.
        for i in (0..args.len()).rev() {
            out = out.replace(&format!("${}", i + 1), args[i]);
        }
        Ok(out)
    }

    /// Expands `name(arg1; arg2; …)` invocations; plain query text (and
    /// `Q(...)` headers) passes through unchanged.
    pub fn maybe_expand(&self, src: &str) -> Result<String, DefineError> {
        let trimmed = src.trim();
        if let Some(open) = trimmed.find('(') {
            let name = &trimmed[..open];
            if trimmed.ends_with(')')
                && !name.is_empty()
                && name != "Q"
                && self.names().any(|n| n == name)
            {
                let inner = &trimmed[open + 1..trimmed.len() - 1];
                let args: Vec<&str> = if inner.trim().is_empty() {
                    Vec::new()
                } else {
                    inner.split(';').map(str::trim).collect()
                };
                return self.expand(name, &args);
            }
        }
        Ok(src.to_string())
    }

    /// Names of the defined operators.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.defs.keys().map(String::as_str)
    }

    /// Number of definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if no operators are defined.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loosedb_engine::Database;

    /// The §6.1 employee world.
    fn employees() -> Database {
        let mut db = Database::new();
        for (who, dept, salary) in [
            ("JOHN", "SHIPPING", 26000i64),
            ("TOM", "ACCOUNTING", 27000),
            ("MARY", "RECEIVING", 25000),
        ] {
            db.add(who, "isa", "EMPLOYEE");
            db.add(who, "WORKS-FOR", dept);
            db.add(who, "EARNS", salary);
            db.add(dept, "isa", "DEPARTMENT");
            db.add(salary, "isa", "SALARY");
        }
        db
    }

    #[test]
    fn paper_section_6_1_relation_table() {
        // relation(employee, works-for department, earns salary)
        let mut db = employees();
        let employee = db.lookup_symbol("EMPLOYEE").unwrap();
        let works_for = db.lookup_symbol("WORKS-FOR").unwrap();
        let department = db.lookup_symbol("DEPARTMENT").unwrap();
        let earns = db.lookup_symbol("EARNS").unwrap();
        let salary = db.lookup_symbol("SALARY").unwrap();
        let view = db.view().unwrap();
        let table = relation(&view, employee, &[(works_for, department), (earns, salary)]).unwrap();
        assert_eq!(table.headers, vec!["EMPLOYEE", "WORKS-FOR DEPARTMENT", "EARNS SALARY"]);
        assert_eq!(table.rows.len(), 3);
        let rendered = table.render(view.interner());
        assert!(rendered.contains("JOHN"), "{rendered}");
        assert!(rendered.contains("SHIPPING"));
        assert!(rendered.contains("26000"));
        assert!(rendered.contains("TOM"));
        assert!(rendered.contains("ACCOUNTING"));
        assert!(rendered.contains("MARY"));
        assert!(rendered.contains("RECEIVING"));
    }

    #[test]
    fn relation_is_not_first_normal_form() {
        // §6.1: "positions in this table may hold any number of entities".
        let mut db = employees();
        db.add("JOHN", "WORKS-FOR", "RECEIVING"); // second department
        let employee = db.lookup_symbol("EMPLOYEE").unwrap();
        let works_for = db.lookup_symbol("WORKS-FOR").unwrap();
        let department = db.lookup_symbol("DEPARTMENT").unwrap();
        let view = db.view().unwrap();
        let table = relation(&view, employee, &[(works_for, department)]).unwrap();
        let john_row =
            table.rows.iter().find(|r| view.interner().display(r.instance) == "JOHN").unwrap();
        assert_eq!(john_row.cells[0].len(), 2);
    }

    #[test]
    fn relation_filters_by_target_class() {
        let mut db = employees();
        db.add("JOHN", "WORKS-FOR", "THE-MAN"); // not a department
        let employee = db.lookup_symbol("EMPLOYEE").unwrap();
        let works_for = db.lookup_symbol("WORKS-FOR").unwrap();
        let department = db.lookup_symbol("DEPARTMENT").unwrap();
        let view = db.view().unwrap();
        let table = relation(&view, employee, &[(works_for, department)]).unwrap();
        let john_row =
            table.rows.iter().find(|r| view.interner().display(r.instance) == "JOHN").unwrap();
        assert_eq!(john_row.cells[0].len(), 1); // THE-MAN excluded
    }

    #[test]
    fn relation_sees_inferred_membership() {
        let mut db = employees();
        // MANAGER ≺ EMPLOYEE; an instance of MANAGER is an employee too.
        db.add("MANAGER", "gen", "EMPLOYEE");
        db.add("BOSS", "isa", "MANAGER");
        db.add("BOSS", "WORKS-FOR", "SHIPPING");
        let employee = db.lookup_symbol("EMPLOYEE").unwrap();
        let works_for = db.lookup_symbol("WORKS-FOR").unwrap();
        let department = db.lookup_symbol("DEPARTMENT").unwrap();
        let view = db.view().unwrap();
        let table = relation(&view, employee, &[(works_for, department)]).unwrap();
        assert!(table.rows.iter().any(|r| view.interner().display(r.instance) == "BOSS"));
    }

    #[test]
    fn function_view_over_closure() {
        let mut db = employees();
        let works_for = db.lookup_symbol("WORKS-FOR").unwrap();
        let john = db.lookup_symbol("JOHN").unwrap();
        let shipping = db.lookup_symbol("SHIPPING").unwrap();
        let department = db.lookup_symbol("DEPARTMENT").unwrap();
        let view = db.view().unwrap();
        let f = function(&view, works_for, Some(department)).unwrap();
        assert!(f.is_function());
        assert_eq!(f.apply(john), Some(shipping));
        // Classified sources (instances) plus the class-level EMPLOYEE
        // row lifted by membership inference — filter by hand if needed.
        assert!(f.len() >= 3);
        // Unfiltered, targets include lifted classes: not a function.
        let unfiltered = function(&view, works_for, None).unwrap();
        assert!(!unfiltered.is_function());
    }

    #[test]
    fn function_view_detects_multivalued() {
        let mut db = employees();
        db.add("JOHN", "WORKS-FOR", "RECEIVING");
        let works_for = db.lookup_symbol("WORKS-FOR").unwrap();
        let john = db.lookup_symbol("JOHN").unwrap();
        let department = db.lookup_symbol("DEPARTMENT").unwrap();
        let view = db.view().unwrap();
        let f = function(&view, works_for, Some(department)).unwrap();
        assert!(!f.is_function());
        assert_eq!(f.apply(john), None);
        assert_eq!(f.image(john).len(), 2);
        // Other sources are still single-valued.
        let tom = db.store().lookup_symbol("TOM").unwrap();
        assert!(f.apply(tom).is_some());
    }

    #[test]
    fn function_view_empty_relationship() {
        let mut db = employees();
        let ghost = db.entity("GHOST-REL");
        let view = db.view().unwrap();
        let f = function(&view, ghost, None).unwrap();
        assert!(f.is_empty());
        assert_eq!(f.image(ghost), &[]);
    }

    #[test]
    fn definitions_expand_and_parse() {
        let mut defs = Definitions::new();
        defs.define(
            "wellpaid",
            1,
            "Q(?x) := exists ?y . (?x, isa, EMPLOYEE) & (?x, EARNS, ?y) & (?y, >, $1)",
        )
        .unwrap();
        let src = defs.expand("wellpaid", &["26500"]).unwrap();
        assert!(src.contains("(?y, >, 26500)"));

        let mut db = employees();
        let query = loosedb_query::parse(&src, db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        let answer = loosedb_query::eval(&query, &view).unwrap();
        assert_eq!(answer.len(), 1); // only TOM (27000)
    }

    #[test]
    fn definition_errors() {
        let mut defs = Definitions::new();
        defs.define("f", 2, "(?x, R, $1) & (?x, S, $2)").unwrap();
        assert_eq!(defs.define("f", 1, "x"), Err(DefineError::Duplicate("f".into())));
        assert_eq!(defs.expand("g", &[]), Err(DefineError::Unknown("g".into())));
        assert_eq!(
            defs.expand("f", &["a"]),
            Err(DefineError::ArityMismatch { name: "f".into(), expected: 2, got: 1 })
        );
    }

    #[test]
    fn many_placeholders_substitute_correctly() {
        let mut defs = Definitions::new();
        let body: String =
            (1..=12).map(|i| format!("(${i}, R, X)")).collect::<Vec<_>>().join(" & ");
        defs.define("wide", 12, body).unwrap();
        let args: Vec<String> = (1..=12).map(|i| format!("E{i}")).collect();
        let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
        let out = defs.expand("wide", &arg_refs).unwrap();
        assert!(out.contains("(E12, R, X)"));
        assert!(out.contains("(E1, R, X)"));
        assert!(!out.contains('$'));
    }
}
