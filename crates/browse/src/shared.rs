//! Concurrent browsing sessions over a [`SharedDatabase`].
//!
//! [`SharedSession`] is the snapshot-isolated counterpart of
//! [`crate::Session`]: it holds an `Arc<SharedDatabase>` instead of owning
//! the database, takes a fresh generation snapshot per operation, and
//! evaluates navigation, probing and queries entirely outside any lock.
//! Many sessions on distinct threads share one database; a writer
//! publishing a new generation never blocks them and is never blocked by
//! them.
//!
//! Two pieces of machinery make a read-only session fully featured:
//!
//! * **Extension interner.** Query text may mention constants the frozen
//!   snapshot never interned (`(?x, EARNS, 99999)` where no fact uses
//!   `99999`). Parsing is first attempted against the generation's frozen
//!   interner ([`loosedb_query::parse_frozen`]); on
//!   [`FrozenParseError::UnknownConstant`] the session falls back to a
//!   private clone of that interner, extends it, and evaluates through
//!   [`Generation::view_with_interner`]. Interners are append-only, so
//!   ids below the snapshot's length resolve identically and the new ids
//!   cannot occur in any closure fact — the query is answered exactly as
//!   if the constants had been interned before the snapshot froze.
//! * **Generation-keyed query cache with carry-over.** Answers are cached
//!   per expanded query text. When the epoch moves, the session asks the
//!   database *which relationships* the intervening publishes touched
//!   ([`SharedDatabase::rels_changed_between`]) and drops only the cached
//!   answers whose dependency relationships intersect the delta; every
//!   other answer survives the write. Queries whose dependencies cannot
//!   be pinned to frozen relationship constants (unbound relationship
//!   positions, universal quantifiers, disjunctions, mathematical
//!   comparators, extension-interned constants) are invalidated on any
//!   epoch move, as before ([`CacheStats`] reports hit and carry rates).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

use loosedb_engine::{DeltaSummary, Generation, SharedDatabase};
use loosedb_query::{
    eval_planned_stats, eval_with, plan_and_eval_stats, Answer, AtomOrdering, EvalStats, Formula,
    FrozenParseError, PlanCache, PlanCacheStats, Query,
};
use loosedb_store::{special, EntityId, EntityValue, Interner, Pattern};

use crate::navigate::{navigate, try_entity, NavigateOptions};
use crate::operators::{relation, Definitions, FunctionView, RelationTable};
use crate::probe::{probe, ProbeOptions, ProbeReport};
use crate::session::SessionError;
use crate::table::GroupedTable;

/// Hit/miss counters of a session's query cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Answers served from the cache.
    pub hits: u64,
    /// Answers that had to be evaluated.
    pub misses: u64,
    /// Entries carried over a publish because their dependency
    /// relationships were disjoint from the write delta.
    pub carried: u64,
    /// Entries dropped to make room when the cache was full.
    pub evictions: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum number of entries retained.
    pub capacity: usize,
}

/// What a cached answer depends on — the invalidation granularity.
#[derive(Clone, Debug)]
pub(crate) enum Deps {
    /// The answer can only change if a write touches one of these
    /// relationship entities (all frozen-interned constants).
    Rels(BTreeSet<EntityId>),
    /// The answer may depend on anything (unbound relationship position,
    /// `Δ` projection, math comparator, universal quantifier, disjunction,
    /// or an extension-interned constant): drop it on any epoch move.
    All,
}

/// Computes the relationships a query's answer can depend on.
///
/// Precise tracking requires every atom's relationship to be a constant
/// interned *below* `frozen_len` (the snapshot's interner length): an
/// extension-interned constant may be re-interned at a different id by a
/// later writer, so its delta would not match ours. Structure that pulls
/// in the whole database disqualifies too: `∀` ranges over the active
/// domain, disjunctions pad columns from it, `Δ` in relationship position
/// projects over every individual relationship, and mathematical
/// comparators enumerate interned numbers (which writes extend).
pub(crate) fn dependency_rels(query: &Query, frozen_len: usize) -> Deps {
    fn walk(f: &Formula, frozen_len: usize, out: &mut BTreeSet<EntityId>) -> bool {
        match f {
            Formula::Atom(t) => {
                let Some(r) = t.r.as_const() else { return false };
                if special::is_math(r) || r == special::TOP || r.index() >= frozen_len {
                    return false;
                }
                out.insert(r);
                true
            }
            Formula::And(a, b) => walk(a, frozen_len, out) && walk(b, frozen_len, out),
            Formula::Exists(_, a) => walk(a, frozen_len, out),
            Formula::Or(..) | Formula::ForAll(..) => false,
        }
    }
    let mut rels = BTreeSet::new();
    if walk(&query.formula, frozen_len, &mut rels) {
        Deps::Rels(rels)
    } else {
        Deps::All
    }
}

struct CacheEntry {
    last_used: u64,
    answer: Arc<Answer>,
    deps: Deps,
}

/// An LRU map from expanded query text to its answer plus the
/// relationships the answer depends on. When the epoch moves, entries
/// whose dependencies are disjoint from the publish delta's relationships
/// are carried over; the rest (and every `Deps::All` entry) are dropped.
pub(crate) struct QueryCache {
    capacity: usize,
    epoch: u64,
    tick: u64,
    map: HashMap<String, CacheEntry>,
    hits: u64,
    misses: u64,
    carried: u64,
    evictions: u64,
    /// Registry mirror (`browse.query_cache.*`); the local counters stay
    /// authoritative per session, the mirror aggregates across sessions.
    metrics: Option<loosedb_obs::CacheCounters>,
}

impl QueryCache {
    fn new(capacity: usize) -> Self {
        QueryCache {
            capacity,
            epoch: 0,
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            carried: 0,
            evictions: 0,
            metrics: None,
        }
    }

    pub(crate) fn with_metrics(capacity: usize, metrics: loosedb_obs::CacheCounters) -> Self {
        QueryCache { metrics: Some(metrics), ..QueryCache::new(capacity) }
    }

    /// Brings the cache up to `epoch`, keeping every entry the
    /// intervening write deltas provably did not touch.
    fn roll(&mut self, epoch: u64, shared: &SharedDatabase) {
        if epoch == self.epoch {
            return;
        }
        let changed = shared.rels_changed_between(self.epoch, epoch);
        self.roll_with(epoch, changed.as_ref());
    }

    /// [`QueryCache::roll`] with the delta supplied by the caller:
    /// `Some(rels)` keeps disjoint entries, `None` (imprecise span)
    /// clears everything. The sharded session merges its per-shard delta
    /// rings and rolls through this entry point, keyed on the summed
    /// epoch vector (monotone: every publish raises the sum).
    pub(crate) fn roll_with(&mut self, epoch: u64, changed: Option<&BTreeSet<EntityId>>) {
        if epoch == self.epoch {
            return;
        }
        match changed {
            Some(changed) if !self.map.is_empty() => {
                self.map.retain(|_, e| match &e.deps {
                    Deps::Rels(d) => d.intersection(changed).next().is_none(),
                    Deps::All => false,
                });
                self.carried += self.map.len() as u64;
                if let Some(m) = &self.metrics {
                    m.carried.add(self.map.len() as u64);
                }
            }
            _ => self.map.clear(),
        }
        if let Some(m) = &self.metrics {
            m.len.set(self.map.len() as u64);
        }
        self.epoch = epoch;
    }

    pub(crate) fn get(&mut self, key: &str) -> Option<Arc<Answer>> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits += 1;
                if let Some(m) = &self.metrics {
                    m.hits.inc();
                }
                Some(Arc::clone(&entry.answer))
            }
            None => {
                self.misses += 1;
                if let Some(m) = &self.metrics {
                    m.misses.inc();
                }
                None
            }
        }
    }

    pub(crate) fn insert(&mut self, key: String, answer: Arc<Answer>, deps: Deps) {
        if self.capacity == 0 {
            return;
        }
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            // O(n) eviction of the least-recently-used entry; capacities
            // are interactive-session sized, so a linked list would be
            // overkill.
            if let Some(lru) =
                self.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                self.map.remove(&lru);
                self.evictions += 1;
                if let Some(m) = &self.metrics {
                    m.evictions.inc();
                }
            }
        }
        self.tick += 1;
        self.map.insert(key, CacheEntry { last_used: self.tick, answer, deps });
        if let Some(m) = &self.metrics {
            m.len.set(self.map.len() as u64);
        }
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            carried: self.carried,
            evictions: self.evictions,
            len: self.map.len(),
            capacity: self.capacity,
        }
    }
}

/// Folds a probe report into the `browse.probe.*` registry metrics.
/// Shared by [`SharedSession`] and [`crate::Session`].
pub(crate) fn record_probe(metrics: &loosedb_obs::Metrics, report: &ProbeReport) {
    metrics.probe_runs.inc();
    metrics.probe_waves.add(report.waves.len() as u64);
    for wave in &report.waves {
        metrics.probe_attempts.add(wave.attempts.len() as u64);
        metrics.probe_wave_size.record(wave.attempts.len() as u64);
        metrics.probe_successes.add(wave.successes().count() as u64);
    }
}

/// A private extension of one generation's interner, for resolving query
/// constants the frozen snapshot has never seen.
struct ExtInterner {
    epoch: u64,
    interner: Interner,
}

/// Parses `src` against the generation, extending the private interner
/// only when the text mentions unknown constants. Returns the query and
/// the interner to evaluate it under (the generation's own, or the
/// session's extension).
///
/// A free function over the extension slot rather than a method: the
/// returned interner keeps `ext` borrowed, and callers still need the
/// session's *other* fields (the plan cache in particular) while they
/// evaluate.
fn parse_on<'a>(
    ext: &'a mut Option<ExtInterner>,
    generation: &'a Generation,
    src: &str,
) -> Result<(Query, &'a Interner), SessionError> {
    match loosedb_query::parse_frozen(src, generation.interner()) {
        Ok(query) => Ok((query, generation.interner())),
        Err(FrozenParseError::Parse(e)) => Err(SessionError::Parse(e)),
        Err(FrozenParseError::UnknownConstant { .. }) => {
            // Refresh the extension whenever the epoch moves: a stale
            // extension would miss constants interned by later writes.
            let stale = ext.as_ref().is_none_or(|e| e.epoch != generation.epoch());
            if stale {
                *ext = Some(ExtInterner {
                    epoch: generation.epoch(),
                    interner: generation.interner().clone(),
                });
            }
            let interner = &mut ext.as_mut().expect("just ensured").interner;
            let query = loosedb_query::parse(src, interner)?;
            Ok((query, &*interner))
        }
    }
}

/// A browsing session over a [`SharedDatabase`]: the concurrent, read-only
/// counterpart of [`crate::Session`].
///
/// Every operation snapshots the current generation once and evaluates
/// against it, so each result is internally consistent even while writers
/// publish; consecutive operations may observe successive generations
/// (monotonically — epochs never go backwards).
pub struct SharedSession {
    shared: Arc<SharedDatabase>,
    defs: Definitions,
    /// Options used for navigation displays.
    pub nav_opts: NavigateOptions,
    /// Options used for probing.
    pub probe_opts: ProbeOptions,
    history: Vec<EntityId>,
    ext: Option<ExtInterner>,
    cache: QueryCache,
    plans: PlanCache,
}

/// Default query-cache capacity (entries) for a session.
const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Default plan-cache capacity (distinct query shapes) for a session.
const DEFAULT_PLAN_CAPACITY: usize = 64;

impl SharedSession {
    /// Starts a session over a shared database.
    pub fn new(shared: Arc<SharedDatabase>) -> Self {
        Self::with_cache_capacity(shared, DEFAULT_CACHE_CAPACITY)
    }

    /// Starts a session with a specific query-cache capacity (0 disables
    /// caching).
    pub fn with_cache_capacity(shared: Arc<SharedDatabase>, capacity: usize) -> Self {
        let metrics = Arc::clone(shared.metrics());
        SharedSession {
            shared,
            defs: Definitions::new(),
            nav_opts: NavigateOptions::default(),
            probe_opts: ProbeOptions::default(),
            history: Vec::new(),
            ext: None,
            cache: QueryCache::with_metrics(capacity, metrics.query_cache.clone()),
            plans: PlanCache::with_metrics(DEFAULT_PLAN_CAPACITY, metrics.plan_cache.clone()),
        }
    }

    /// The shared database this session reads from.
    pub fn shared(&self) -> &Arc<SharedDatabase> {
        &self.shared
    }

    /// The current generation (the snapshot the next operation would use).
    pub fn snapshot(&self) -> Arc<Generation> {
        self.shared.snapshot()
    }

    /// The epoch of the current generation.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch()
    }

    /// Hit/miss counters of this session's query cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Hit/miss counters of this session's plan cache (query *shapes*
    /// whose join order was memoized across evaluations).
    pub fn plan_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// The focus history, oldest first.
    pub fn history(&self) -> &[EntityId] {
        &self.history
    }

    fn resolve(&self, generation: &Generation, name: &str) -> Result<EntityId, SessionError> {
        if name == "*" {
            return Err(SessionError::UnknownEntity("*".into()));
        }
        let value = if let Ok(i) = name.parse::<i64>() {
            EntityValue::Int(i)
        } else if let Ok(x) = name.parse::<f64>() {
            EntityValue::float(x)
        } else {
            EntityValue::symbol(name)
        };
        generation.lookup(&value).ok_or_else(|| SessionError::UnknownEntity(name.to_string()))
    }

    fn part(&self, generation: &Generation, name: &str) -> Result<Option<EntityId>, SessionError> {
        if name == "*" {
            Ok(None)
        } else {
            self.resolve(generation, name).map(Some)
        }
    }

    /// Focuses on an entity: renders its neighborhood `(E, *, *)` and
    /// pushes it on the focus history.
    pub fn focus(&mut self, name: &str) -> Result<GroupedTable, SessionError> {
        let generation = self.shared.snapshot();
        let e = self.resolve(&generation, name)?;
        let start = Instant::now();
        let table = navigate(&generation.view(), Pattern::from_source(e), &self.nav_opts)?;
        self.record_nav(start);
        self.history.push(e);
        Ok(table)
    }

    /// Returns to the previous focus, re-rendering its neighborhood
    /// against the *current* generation.
    pub fn back(&mut self) -> Result<GroupedTable, SessionError> {
        if self.history.len() < 2 {
            return Err(SessionError::NoHistory);
        }
        self.history.pop();
        let e = *self.history.last().expect("non-empty");
        let generation = self.shared.snapshot();
        let start = Instant::now();
        let table = navigate(&generation.view(), Pattern::from_source(e), &self.nav_opts)?;
        self.record_nav(start);
        Ok(table)
    }

    /// Navigates an arbitrary template given as three names (`"*"` for a
    /// free position).
    pub fn navigate_parts(
        &mut self,
        s: &str,
        r: &str,
        t: &str,
    ) -> Result<GroupedTable, SessionError> {
        let generation = self.shared.snapshot();
        let pattern = Pattern::new(
            self.part(&generation, s)?,
            self.part(&generation, r)?,
            self.part(&generation, t)?,
        );
        let start = Instant::now();
        let table = navigate(&generation.view(), pattern, &self.nav_opts)?;
        self.record_nav(start);
        Ok(table)
    }

    fn record_nav(&self, start: Instant) {
        let m = self.shared.metrics();
        m.nav_builds.inc();
        m.nav_build_ns.record_duration(start.elapsed());
    }

    /// Evaluates a standard query. Answers are cached per expanded text;
    /// a repeated query on an unchanged database is served from the
    /// cache, and a published write invalidates only the cached answers
    /// whose dependency relationships intersect the write delta (answers
    /// that cannot be tracked precisely are dropped on any publish).
    ///
    /// Below the answer cache sits a *plan* cache keyed on query shape:
    /// when the same formula is re-evaluated (after a write invalidated
    /// its answer, or under different constants with identical structure),
    /// the memoized join order is replayed instead of re-probing the view,
    /// and the same delta-based carry-over keeps plans alive across
    /// disjoint writes. A replayed plan only fixes the join order — if it
    /// is stale it costs performance, never correctness — so plans can be
    /// carried more aggressively than answers.
    pub fn query(&mut self, src: &str) -> Result<Arc<Answer>, SessionError> {
        let expanded = self.defs.maybe_expand(src)?;
        let generation = self.shared.snapshot();
        let epoch = generation.epoch();
        self.cache.roll(epoch, &self.shared);
        if self.plans.epoch() != epoch {
            match self.shared.delta_between(self.plans.epoch(), epoch) {
                DeltaSummary::Precise(changed) => self.plans.roll(epoch, Some(&changed)),
                // A full recompute at a known epoch (removal, rule
                // change): answers above were dropped, but structurally
                // tracked plans survive — stale join orders cost
                // performance, never correctness.
                DeltaSummary::FullAt(_) => self.plans.roll_stale(epoch),
                DeltaSummary::Unknown => self.plans.roll(epoch, None),
            }
        }
        if let Some(hit) = self.cache.get(&expanded) {
            return Ok(hit);
        }
        let eval_opts = self.probe_opts.eval;
        let (query, interner) = parse_on(&mut self.ext, &generation, &expanded)?;
        let deps = dependency_rels(&query, generation.interner().len());
        let view = generation.view_with_interner(interner);
        let start = Instant::now();
        let (answer, stats) = if eval_opts.ordering == AtomOrdering::Greedy {
            match self.plans.get(&query, &eval_opts) {
                Some(plan) => {
                    let (answer, stats) = eval_planned_stats(&query, &view, eval_opts, &plan)?;
                    (Arc::new(answer), stats)
                }
                None => {
                    let (answer, plan, stats) = plan_and_eval_stats(&query, &view, eval_opts)?;
                    self.plans.insert(&query, &eval_opts, Arc::new(plan));
                    (Arc::new(answer), stats)
                }
            }
        } else {
            // Syntactic ordering needs no probes, so a plan cache would
            // only add bookkeeping.
            (Arc::new(eval_with(&query, &view, eval_opts)?), EvalStats::default())
        };
        let m = self.shared.metrics();
        m.query_evals.inc();
        m.query_eval_ns.record_duration(start.elapsed());
        m.query_rows.record(answer.len() as u64);
        m.strategy_hash.add(stats.strategy_hash);
        m.strategy_nested.add(stats.strategy_nested);
        m.join_partitions.add(stats.partitions);
        self.cache.insert(expanded, Arc::clone(&answer), deps);
        Ok(answer)
    }

    /// Probes a query (§5): evaluates it and, on failure, runs automatic
    /// retraction. Probe reports are not cached (they enumerate
    /// alternatives, not answers).
    pub fn probe(&mut self, src: &str) -> Result<ProbeReport, SessionError> {
        let expanded = self.defs.maybe_expand(src)?;
        let generation = self.shared.snapshot();
        let probe_opts = self.probe_opts;
        let (query, interner) = parse_on(&mut self.ext, &generation, &expanded)?;
        let view = generation.view_with_interner(interner);
        let report = probe(&query, &view, &probe_opts);
        record_probe(self.shared.metrics(), &report);
        Ok(report)
    }

    /// Renders a probe report's §5.2 menu under the interner its ids
    /// were actually resolved against. A probe whose text mentioned
    /// constants unknown to the frozen snapshot parsed via the session's
    /// private extension interner; rendering such a report with the bare
    /// snapshot interner panics on the extension-only ids. The extension
    /// is a superset clone of the generation's interner, so when it is
    /// current it is safe for every report; otherwise the generation's
    /// own interner is.
    pub fn render_probe(&self, report: &ProbeReport) -> String {
        let generation = self.shared.snapshot();
        match &self.ext {
            Some(e) if e.epoch == generation.epoch() => report.render_menu(&e.interner),
            _ => report.render_menu(generation.interner()),
        }
    }

    /// Renders an answer's rows as display strings under the interner
    /// its ids were actually resolved against — the answer analogue of
    /// [`SharedSession::render_probe`], used by the serving layer to put
    /// rows on the wire. Mathematical comparators can bind values that
    /// were interned only by the session's private extension, so a bare
    /// snapshot interner is not always enough.
    pub fn render_answer(&self, answer: &Answer) -> Vec<Vec<String>> {
        let generation = self.shared.snapshot();
        let interner = match &self.ext {
            Some(e) if e.epoch == generation.epoch() => &e.interner,
            _ => generation.interner(),
        };
        answer.rows.iter().map(|row| row.iter().map(|&e| interner.display(e)).collect()).collect()
    }

    /// The §6.1 `try(e)` operator.
    pub fn try_entity(&mut self, name: &str) -> Result<GroupedTable, SessionError> {
        let generation = self.shared.snapshot();
        let e = self.resolve(&generation, name)?;
        Ok(try_entity(&generation.view(), e)?)
    }

    /// The §6.1 `relation(s, r1 t1, …)` operator, by entity names.
    pub fn relation(
        &mut self,
        class: &str,
        columns: &[(&str, &str)],
    ) -> Result<RelationTable, SessionError> {
        let generation = self.shared.snapshot();
        let class = self.resolve(&generation, class)?;
        let cols: Vec<(EntityId, EntityId)> = columns
            .iter()
            .map(|(r, t)| Ok((self.resolve(&generation, r)?, self.resolve(&generation, t)?)))
            .collect::<Result<_, SessionError>>()?;
        Ok(relation(&generation.view(), class, &cols)?)
    }

    /// Renders the evaluation plan of a query without executing it.
    pub fn explain_query(&mut self, src: &str) -> Result<String, SessionError> {
        let expanded = self.defs.maybe_expand(src)?;
        let generation = self.shared.snapshot();
        let (query, interner) = parse_on(&mut self.ext, &generation, &expanded)?;
        let view = generation.view_with_interner(interner);
        Ok(loosedb_query::explain_plan(&query, &view))
    }

    /// The functional view of a relationship (§6.1), optionally restricted
    /// to targets of a class.
    pub fn function(
        &mut self,
        rel: &str,
        target_class: Option<&str>,
    ) -> Result<FunctionView, SessionError> {
        let generation = self.shared.snapshot();
        let rel = self.resolve(&generation, rel)?;
        let class = target_class.map(|c| self.resolve(&generation, c)).transpose()?;
        Ok(crate::operators::function(&generation.view(), rel, class)?)
    }

    /// Defines a named operator (§6 definition facility). Definitions are
    /// session-private, like a user's workspace in the paper.
    pub fn define(&mut self, name: &str, arity: usize, body: &str) -> Result<(), SessionError> {
        Ok(self.defs.define(name, arity, body)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loosedb_engine::Database;

    fn shared() -> Arc<SharedDatabase> {
        let mut db = Database::new();
        db.add("JOHN", "isa", "EMPLOYEE");
        db.add("JOHN", "LIKES", "FELIX");
        db.add("JOHN", "FAVORITE-MUSIC", "PC#9-WAM");
        db.add("PC#9-WAM", "COMPOSED-BY", "MOZART");
        db.add("JOHN", "EARNS", 25000i64);
        Arc::new(SharedDatabase::new(db).unwrap())
    }

    #[test]
    fn focus_query_and_history() {
        let mut s = SharedSession::new(shared());
        let t1 = s.focus("JOHN").unwrap();
        assert!(t1.title_cells.contains(&"EMPLOYEE".to_string()));
        s.focus("PC#9-WAM").unwrap();
        assert_eq!(s.history().len(), 2);
        let t3 = s.back().unwrap();
        assert!(t3.title_cells.contains(&"EMPLOYEE".to_string()));

        let answer = s.query("(?x, COMPOSED-BY, MOZART)").unwrap();
        assert_eq!(answer.len(), 1);
    }

    #[test]
    fn unknown_constants_fall_back_to_extension_interner() {
        let mut s = SharedSession::new(shared());
        // 30000 was never interned by any fact; frozen parse misses and
        // the extension path answers (emptily, but correctly).
        let none = s.query("Q(?x) := (?x, EARNS, 30000)").unwrap();
        assert!(none.is_empty());
        // Known constants keep answering through the frozen path.
        let one = s.query("Q(?x) := (?x, EARNS, 25000)").unwrap();
        assert_eq!(one.len(), 1);
        // Comparators evaluate through the extension too.
        let cmp = s.query("Q(?x) := exists ?y . (?x, EARNS, ?y) & (?y, >, 20000)").unwrap();
        assert_eq!(cmp.len(), 1);
    }

    #[test]
    fn cache_serves_repeats_and_rolls_on_writes() {
        let db = shared();
        let mut s = SharedSession::new(Arc::clone(&db));
        let a1 = s.query("(JOHN, LIKES, ?x)").unwrap();
        let a2 = s.query("(JOHN, LIKES, ?x)").unwrap();
        assert!(Arc::ptr_eq(&a1, &a2), "repeat must be served from cache");
        let stats = s.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        db.insert("JOHN", "LIKES", "MARY").unwrap();
        let a3 = s.query("(JOHN, LIKES, ?x)").unwrap();
        assert_eq!(a3.len(), 2, "new generation must invalidate the cache");
        assert!(!Arc::ptr_eq(&a1, &a3));
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut s = SharedSession::with_cache_capacity(shared(), 2);
        s.query("(JOHN, LIKES, ?x)").unwrap();
        s.query("(JOHN, EARNS, ?x)").unwrap();
        s.query("(JOHN, LIKES, ?x)").unwrap(); // touch; EARNS is now LRU
        s.query("(JOHN, isa, ?x)").unwrap(); // evicts EARNS
        let before = s.cache_stats().hits;
        s.query("(JOHN, LIKES, ?x)").unwrap();
        assert_eq!(s.cache_stats().hits, before + 1, "LIKES must still be cached");
        assert_eq!(s.cache_stats().len, 2);
    }

    #[test]
    fn cache_carries_answers_over_disjoint_writes() {
        let db = shared();
        let mut s = SharedSession::new(Arc::clone(&db));
        let likes = s.query("(JOHN, LIKES, ?x)").unwrap();
        let earns = s.query("(JOHN, EARNS, ?x)").unwrap();

        // The write touches only FAVORITE-MUSIC; both cached answers
        // depend on other relationships and must survive the publish.
        db.insert("MARY", "FAVORITE-MUSIC", "PC#9-WAM").unwrap();
        let likes2 = s.query("(JOHN, LIKES, ?x)").unwrap();
        let earns2 = s.query("(JOHN, EARNS, ?x)").unwrap();
        assert!(Arc::ptr_eq(&likes, &likes2), "disjoint write must not evict LIKES");
        assert!(Arc::ptr_eq(&earns, &earns2), "disjoint write must not evict EARNS");
        assert_eq!(s.cache_stats().carried, 2);
    }

    #[test]
    fn cache_invalidates_only_entries_touching_the_write_delta() {
        let db = shared();
        let mut s = SharedSession::new(Arc::clone(&db));
        let likes = s.query("(JOHN, LIKES, ?x)").unwrap();
        let earns = s.query("(JOHN, EARNS, ?x)").unwrap();

        db.insert("JOHN", "LIKES", "MARY").unwrap();
        let likes2 = s.query("(JOHN, LIKES, ?x)").unwrap();
        assert_eq!(likes2.len(), 2, "stale LIKES answer must be re-evaluated");
        assert!(!Arc::ptr_eq(&likes, &likes2));
        let earns2 = s.query("(JOHN, EARNS, ?x)").unwrap();
        assert!(Arc::ptr_eq(&earns, &earns2), "EARNS is untouched by a LIKES write");
    }

    #[test]
    fn untrackable_queries_drop_on_any_publish() {
        let db = shared();
        let mut s = SharedSession::new(Arc::clone(&db));
        // The comparator atom enumerates interned numbers, so this answer
        // cannot be pinned to relationship ids.
        let src = "Q(?x) := exists ?y . (?x, EARNS, ?y) & (?y, >, 20000)";
        let cmp = s.query(src).unwrap();
        db.insert("MARY", "FAVORITE-MUSIC", "PC#9-WAM").unwrap();
        let cmp2 = s.query(src).unwrap();
        assert!(!Arc::ptr_eq(&cmp, &cmp2), "math-dependent answers must not be carried");
    }

    #[test]
    fn query_cache_survives_disjoint_removal() {
        let db = shared();
        let mut s = SharedSession::new(Arc::clone(&db));
        let likes = s.query("(JOHN, LIKES, ?x)").unwrap();
        let music = s.query("(JOHN, FAVORITE-MUSIC, ?x)").unwrap();
        let fact = {
            let g = db.snapshot();
            let i = g.interner();
            loosedb_store::Fact::new(
                i.lookup(&"JOHN".into()).unwrap(),
                i.lookup(&"FAVORITE-MUSIC".into()).unwrap(),
                i.lookup(&"PC#9-WAM".into()).unwrap(),
            )
        };
        // Removal is maintained incrementally now: the publish delta
        // names exactly the rels the retraction wave touched, so cached
        // answers over disjoint rels ride across it.
        assert!(db.remove(&fact).unwrap());
        let likes2 = s.query("(JOHN, LIKES, ?x)").unwrap();
        assert!(Arc::ptr_eq(&likes, &likes2), "disjoint removal must not evict LIKES");
        assert!(s.cache_stats().carried >= 1, "{:?}", s.cache_stats());
        // The answer that depends on the removed rel is re-evaluated.
        let music2 = s.query("(JOHN, FAVORITE-MUSIC, ?x)").unwrap();
        assert!(!Arc::ptr_eq(&music, &music2), "touched entry must be re-evaluated");
        assert!(music2.is_empty(), "the fact is gone");
    }

    #[test]
    fn plan_cache_survives_answer_eviction_and_disjoint_writes() {
        let db = shared();
        // Answer capacity 1: the second query evicts the first answer,
        // but the plan cache keys on shape and keeps both plans.
        let mut s = SharedSession::with_cache_capacity(Arc::clone(&db), 1);
        s.query("(JOHN, LIKES, ?x)").unwrap();
        s.query("(JOHN, EARNS, ?x)").unwrap();
        s.query("(JOHN, LIKES, ?x)").unwrap(); // answer re-evaluated, plan replayed
        let stats = s.plan_stats();
        assert_eq!((stats.hits, stats.misses), (1, 2), "{stats:?}");

        // A write disjoint from both shapes carries the plans over the
        // publish, so the re-evaluation after it still skips planning.
        db.insert("MARY", "FAVORITE-MUSIC", "PC#9-WAM").unwrap();
        s.query("(JOHN, EARNS, ?x)").unwrap();
        let stats = s.plan_stats();
        assert_eq!(stats.hits, 2, "{stats:?}");
        assert!(stats.carried >= 2, "{stats:?}");

        // A write touching EARNS drops that plan; the next evaluation
        // plans afresh.
        db.insert("MARY", "EARNS", 1000i64).unwrap();
        s.query("(JOHN, EARNS, ?x)").unwrap();
        let stats = s.plan_stats();
        assert_eq!((stats.hits, stats.misses), (2, 3), "{stats:?}");
    }

    #[test]
    fn plan_cache_survives_disjoint_removal() {
        let db = shared();
        // Answer capacity 1, so plan reuse is observable: each re-query
        // misses the answer cache and must replay (or replan) its plan.
        let mut s = SharedSession::with_cache_capacity(Arc::clone(&db), 1);
        assert_eq!(s.query("(JOHN, LIKES, ?x)").unwrap().len(), 1);
        assert_eq!(s.query("(JOHN, EARNS, ?x)").unwrap().len(), 1);
        let stats = s.plan_stats();
        assert_eq!((stats.hits, stats.misses), (0, 2), "{stats:?}");

        // A removal publishes a precise delta now. This one touches only
        // FAVORITE-MUSIC, so both plans ride across the publish and the
        // LIKES re-query replays its carried plan instead of replanning.
        let g = db.snapshot();
        let john = g.lookup_symbol("JOHN").unwrap();
        let music = g.lookup_symbol("FAVORITE-MUSIC").unwrap();
        let pc9 = g.lookup_symbol("PC#9-WAM").unwrap();
        assert!(db.remove(&loosedb_store::Fact::new(john, music, pc9)).unwrap());
        assert_eq!(s.query("(JOHN, LIKES, ?x)").unwrap().len(), 1);
        let stats = s.plan_stats();
        assert_eq!((stats.hits, stats.misses), (1, 2), "LIKES plan must be reused: {stats:?}");
        assert!(stats.carried >= 2, "{stats:?}");

        // A removal touching EARNS rolls exactly that plan stale: the
        // EARNS re-query replans, while LIKES keeps hitting.
        let earns = g.lookup_symbol("EARNS").unwrap();
        let salary = g.interner().lookup(&25000i64.into()).unwrap();
        assert!(db.remove(&loosedb_store::Fact::new(john, earns, salary)).unwrap());
        assert!(s.query("(JOHN, EARNS, ?x)").unwrap().is_empty());
        assert_eq!(s.query("(JOHN, LIKES, ?x)").unwrap().len(), 1);
        let stats = s.plan_stats();
        assert_eq!((stats.hits, stats.misses), (2, 3), "{stats:?}");
    }

    #[test]
    fn sessions_see_writes_published_after_snapshot() {
        let db = shared();
        let mut s = SharedSession::new(Arc::clone(&db));
        assert!(matches!(s.focus("MARY"), Err(SessionError::UnknownEntity(_))));
        db.insert("MARY", "isa", "EMPLOYEE").unwrap();
        let table = s.focus("MARY").unwrap();
        assert!(table.title_cells.contains(&"EMPLOYEE".to_string()));
    }

    #[test]
    fn defined_operators_and_probe() {
        let db = shared();
        let mut s = SharedSession::new(Arc::clone(&db));
        s.define("earns-more", 1, "Q(?x) := exists ?y . (?x, EARNS, ?y) & (?y, >, $1)").unwrap();
        assert_eq!(s.query("earns-more(20000)").unwrap().len(), 1);
        assert!(s.query("earns-more(30000)").unwrap().is_empty());

        db.insert("ADORES", "gen", "LIKES").unwrap();
        let report = s.probe("(JOHN, ADORES, ?x)").unwrap();
        let menu = report.render_menu(s.snapshot().interner());
        assert!(menu.contains("with LIKES instead of ADORES"), "{menu}");
    }

    #[test]
    fn render_probe_survives_extension_constants() {
        let db = shared();
        let mut s = SharedSession::new(db);
        // "WORSHIPS" was never interned by any write: parsing falls back
        // to the session's private extension interner, so the report's
        // ids are unresolvable by the bare snapshot interner and
        // rendering must go through `render_probe`.
        let report = s.probe("(JOHN, WORSHIPS, ?x)").unwrap();
        let menu = s.render_probe(&report);
        assert!(menu.contains("WORSHIPS"), "{menu}");
    }

    #[test]
    fn relation_function_and_explain() {
        let db = shared();
        db.write(|d| {
            d.add("SHIPPING", "isa", "DEPARTMENT");
            d.add("JOHN", "WORKS-FOR", "SHIPPING");
        })
        .unwrap();
        let mut s = SharedSession::new(db);
        let table = s.relation("EMPLOYEE", &[("WORKS-FOR", "DEPARTMENT")]).unwrap();
        assert_eq!(table.rows.len(), 1);
        let f = s.function("COMPOSED-BY", None).unwrap();
        assert!(f.is_function());
        let plan = s.explain_query("Q(?x) := (?x, WORKS-FOR, SHIPPING)").unwrap();
        assert!(plan.contains("WORKS-FOR"), "{plan}");
    }
}
