//! Browsing by probing: automatic retraction of failed queries (§5).
//!
//! Probing treats the failure (empty answer) of a query as
//! *overqualification*: the query "zoomed in" too far. The system then
//! automatically attempts the query's **retraction set** — all *minimally
//! broader* queries, each obtained by a single application of an inference
//! rule from §3.1 with a minimal generalization (§5.1):
//!
//! * a **source** constant is replaced by a minimal *specialization*
//!   (rule G1: `(FRESHMAN, LOVE, z)` is implied by `(STUDENT, LOVE, z)`);
//! * a **relationship** constant is replaced by a minimal generalization
//!   (rule G2: `LOVE` → `LIKE`);
//! * a **target** constant is replaced by a minimal generalization
//!   (rule G3: `FREE` → `CHEAP`);
//! * a template already degenerate — only variables and `Δ`/`∇` — is
//!   *deleted* (§5.2).
//!
//! Successes are reported as a menu ("Success with FRESHMAN instead of
//! STUDENT"); if every retraction fails too, the process repeats wave by
//! wave up the broadness lattice until something succeeds, nothing remains
//! to broaden (reported, per §5.2, as "no such database entities" when a
//! constant was never a database entity), or the wave budget is exhausted.

use std::collections::BTreeSet;

use loosedb_engine::{ClosureView, FactView, Taxonomy, Template, Term};
use loosedb_query::{eval_with, Answer, EvalOptions, Query};
use loosedb_store::{special, EntityId, Interner};

use crate::table::GroupedTable;

/// Options controlling the retraction process.
#[derive(Clone, Copy, Debug)]
pub struct ProbeOptions {
    /// Maximum retraction waves before giving up.
    pub max_waves: usize,
    /// Maximum queries attempted per wave (safety valve for bushy
    /// taxonomies).
    pub max_attempts_per_wave: usize,
    /// Evaluation options for each attempt.
    pub eval: EvalOptions,
}

impl Default for ProbeOptions {
    fn default() -> Self {
        ProbeOptions { max_waves: 8, max_attempts_per_wave: 512, eval: EvalOptions::default() }
    }
}

/// One broadening step applied to a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RetractionStep {
    /// A relationship or target constant was replaced by a minimal
    /// generalization (rules G2/G3).
    Generalized {
        /// The original entity.
        from: EntityId,
        /// Its minimal generalization.
        to: EntityId,
    },
    /// A source constant was replaced by a minimal specialization (G1).
    Specialized {
        /// The original entity.
        from: EntityId,
        /// Its minimal specialization.
        to: EntityId,
    },
    /// A degenerate template (variables and `Δ`/`∇` only) was deleted.
    DeletedTemplate {
        /// Index of the deleted atom in the query's atom order.
        atom: usize,
    },
}

impl RetractionStep {
    /// The menu phrasing of §5.2.
    pub fn describe(&self, interner: &Interner) -> String {
        match self {
            RetractionStep::Generalized { from, to } | RetractionStep::Specialized { from, to } => {
                format!("with {} instead of {}", interner.display(*to), interner.display(*from))
            }
            RetractionStep::DeletedTemplate { atom } => {
                format!("without condition #{}", atom + 1)
            }
        }
    }
}

/// One attempted query in a wave.
#[derive(Clone, Debug)]
pub struct Attempt {
    /// The broadened query.
    pub query: Query,
    /// All steps applied since the original query.
    pub steps: Vec<RetractionStep>,
    /// The answer, if the attempt succeeded (non-empty).
    pub answer: Option<Answer>,
}

impl Attempt {
    /// True if the attempt produced a non-empty answer.
    pub fn succeeded(&self) -> bool {
        self.answer.is_some()
    }
}

/// One wave of retraction attempts.
#[derive(Clone, Debug, Default)]
pub struct Wave {
    /// The attempts of this wave.
    pub attempts: Vec<Attempt>,
}

impl Wave {
    /// The successful attempts.
    pub fn successes(&self) -> impl Iterator<Item = &Attempt> {
        self.attempts.iter().filter(|a| a.succeeded())
    }
}

/// How the probe ended.
#[derive(Clone, Debug)]
pub enum ProbeOutcome {
    /// The original query succeeded; no retraction was needed.
    Succeeded(Answer),
    /// Some wave produced successes (listed in `ProbeReport::waves`).
    RetractionsSucceeded {
        /// Index of the first wave with a success.
        wave: usize,
    },
    /// Broadening exhausted without success and at least one constant was
    /// never a database entity (§5.2's misspelling diagnosis).
    NoSuchEntities(Vec<EntityId>),
    /// Broadening exhausted (or the wave budget ran out) with no success.
    Exhausted,
}

/// The full record of a probing session for one query.
#[derive(Clone, Debug)]
pub struct ProbeReport {
    /// The query as posed.
    pub original: Query,
    /// The waves attempted (empty if the original succeeded).
    pub waves: Vec<Wave>,
    /// How the probe ended.
    pub outcome: ProbeOutcome,
    /// §5.2's *critical failure*: the original failed but **all** of its
    /// minimal retractions succeeded — the exact point where the database
    /// cannot satisfy the query has been isolated.
    pub critical: bool,
}

impl ProbeReport {
    /// Renders the §5.2 menu.
    pub fn render_menu(&self, interner: &Interner) -> String {
        match &self.outcome {
            ProbeOutcome::Succeeded(answer) => {
                format!("Query succeeded ({} answer(s)).\n", answer.len())
            }
            ProbeOutcome::RetractionsSucceeded { wave } => {
                let mut out = String::from("Query failed. Retrying\n\n");
                let mut n = 0;
                for attempt in self.waves[*wave].successes() {
                    n += 1;
                    let descr: Vec<String> =
                        attempt.steps.iter().map(|s| s.describe(interner)).collect();
                    out.push_str(&format!("{n}. Success {}\n", descr.join(" and ")));
                }
                out.push_str("\nYou may select\n");
                if self.critical {
                    out.push_str(
                        "\n(critical failure: every minimal broadening succeeds — \
                         the database cannot satisfy exactly this conjunction)\n",
                    );
                }
                out
            }
            ProbeOutcome::NoSuchEntities(missing) => {
                let names: Vec<String> = missing.iter().map(|e| interner.display(*e)).collect();
                format!("Query failed: no such database entities: {}\n", names.join(", "))
            }
            ProbeOutcome::Exhausted => "Query failed; no broader query succeeded.\n".to_string(),
        }
    }

    /// A one-table summary of a wave for display.
    pub fn wave_table(&self, wave: usize, interner: &Interner) -> GroupedTable {
        let mut table = GroupedTable::new(format!("retraction wave {}", wave + 1));
        let mut queries = Vec::new();
        let mut outcomes = Vec::new();
        for attempt in &self.waves[wave].attempts {
            queries.push(attempt.query.render(interner));
            outcomes.push(match &attempt.answer {
                Some(a) => format!("success ({} answers)", a.len()),
                None => "failed".to_string(),
            });
        }
        table.push_column("query", queries);
        table.push_column("outcome", outcomes);
        table
    }
}

/// Runs the probing protocol of §5 for a query.
///
/// ```
/// use loosedb_engine::Database;
/// use loosedb_browse::{probe_text, ProbeOptions};
///
/// let mut db = Database::new();
/// db.add("ADORES", "gen", "LIKES");
/// db.add("JOHN", "LIKES", "FELIX");
///
/// // Nobody ADORES anything; the retraction to LIKES succeeds.
/// let report = probe_text("(JOHN, ADORES, ?x)", &mut db, &ProbeOptions::default()).unwrap();
/// let menu = report.render_menu(db.store().interner());
/// assert!(menu.contains("Success with LIKES instead of ADORES"));
/// ```
pub fn probe(query: &Query, view: &ClosureView<'_>, opts: &ProbeOptions) -> ProbeReport {
    probe_with_taxonomy(query, view, &Taxonomy::new(view.closure()), opts)
}

/// Like [`probe`], but generic over the retrieval view, with the `≺`
/// taxonomy supplied by the caller. This is the entry point for sharded
/// browsing: structural facts are broadcast to every shard, so any one
/// shard's closure yields the global taxonomy while the attempts
/// evaluate over the scatter-gather union view.
pub fn probe_with_taxonomy<V: FactView>(
    query: &Query,
    view: &V,
    taxonomy: &Taxonomy<'_>,
    opts: &ProbeOptions,
) -> ProbeReport {
    let _span = loosedb_obs::span!("browse.probe", max_waves = opts.max_waves);

    // Attempt the original query first.
    if let Ok(answer) = eval_with(query, view, opts.eval) {
        if answer.succeeded() {
            return ProbeReport {
                original: query.clone(),
                waves: Vec::new(),
                outcome: ProbeOutcome::Succeeded(answer),
                critical: false,
            };
        }
    }

    let mut seen: BTreeSet<String> = BTreeSet::new();
    seen.insert(query.render(view.interner()));
    let mut missing: BTreeSet<EntityId> = BTreeSet::new();
    let mut waves: Vec<Wave> = Vec::new();
    let mut frontier: Vec<(Query, Vec<RetractionStep>)> = vec![(query.clone(), Vec::new())];

    for wave_index in 0..opts.max_waves {
        let mut wspan = loosedb_obs::span!("browse.retraction_wave", wave = wave_index);
        let mut wave = Wave::default();
        for (base, steps) in &frontier {
            for (broadened, step) in retraction_set(base, taxonomy, &mut missing) {
                let rendered = broadened.render(view.interner());
                if !seen.insert(rendered) {
                    continue;
                }
                if wave.attempts.len() >= opts.max_attempts_per_wave {
                    break;
                }
                let mut all_steps = steps.clone();
                all_steps.push(step);
                let answer = match eval_with(&broadened, view, opts.eval) {
                    Ok(a) if a.succeeded() => Some(a),
                    _ => None,
                };
                wave.attempts.push(Attempt { query: broadened, steps: all_steps, answer });
            }
        }
        wspan.record("attempts", wave.attempts.len());
        wspan.record("successes", wave.attempts.iter().filter(|a| a.succeeded()).count());
        if wave.attempts.is_empty() {
            break;
        }
        let any_success = wave.attempts.iter().any(Attempt::succeeded);
        let all_success = wave.attempts.iter().all(Attempt::succeeded);
        waves.push(wave);
        if any_success {
            let wave_index = waves.len() - 1;
            return ProbeReport {
                original: query.clone(),
                critical: wave_index == 0 && all_success,
                outcome: ProbeOutcome::RetractionsSucceeded { wave: wave_index },
                waves,
            };
        }
        frontier = waves
            .last()
            .expect("just pushed")
            .attempts
            .iter()
            .map(|a| (a.query.clone(), a.steps.clone()))
            .collect();
    }

    let outcome = if missing.is_empty() {
        ProbeOutcome::Exhausted
    } else {
        ProbeOutcome::NoSuchEntities(missing.into_iter().collect())
    };
    ProbeReport { original: query.clone(), waves, outcome, critical: false }
}

/// The retraction set of a query (§5.1): every minimally broader query,
/// each tagged with the step that produced it. Constants that cannot be
/// broadened because they are not database entities are recorded in
/// `missing`.
pub fn retraction_set(
    query: &Query,
    taxonomy: &Taxonomy<'_>,
    missing: &mut BTreeSet<EntityId>,
) -> Vec<(Query, RetractionStep)> {
    let mut out = Vec::new();
    let atoms: Vec<Template> = query.formula.atoms().into_iter().copied().collect();
    for (ai, tpl) in atoms.iter().enumerate() {
        if is_degenerate(tpl) {
            // §5.2: templates of variables and Δ/∇ only are deleted.
            let formula = query.formula.rewrite_atom(ai, &|_| None);
            out.push((
                Query { var_names: query.var_names.clone(), free: query.free.clone(), formula },
                RetractionStep::DeletedTemplate { atom: ai },
            ));
            continue;
        }
        for position in 0..3 {
            let term = tpl.terms()[position];
            let Term::Const(e) = term else { continue };
            if e == special::TOP || e == special::BOT {
                continue;
            }
            let (replacements, make_step): (
                Vec<EntityId>,
                fn(EntityId, EntityId) -> RetractionStep,
            ) = if position == 0 {
                (taxonomy.minimal_specializations(e), |from, to| RetractionStep::Specialized {
                    from,
                    to,
                })
            } else {
                (taxonomy.minimal_generalizations(e), |from, to| RetractionStep::Generalized {
                    from,
                    to,
                })
            };
            if replacements.is_empty() && !taxonomy.exists(e) {
                missing.insert(e);
            }
            for to in replacements {
                let formula = query.formula.rewrite_atom(ai, &|t| {
                    let mut terms = t.terms();
                    terms[position] = Term::Const(to);
                    Some(Template::new(terms[0], terms[1], terms[2]))
                });
                out.push((
                    Query { var_names: query.var_names.clone(), free: query.free.clone(), formula },
                    make_step(e, to),
                ));
            }
        }
    }
    out
}

/// True if the template contains only variables and `Δ`/`∇` (§5.2).
fn is_degenerate(tpl: &Template) -> bool {
    tpl.terms().into_iter().all(|t| match t {
        Term::Var(_) => true,
        Term::Const(e) => e == special::TOP || e == special::BOT,
    })
}

/// Convenience used by tests and the REPL: probe a textual query.
pub fn probe_text(
    src: &str,
    db: &mut loosedb_engine::Database,
    opts: &ProbeOptions,
) -> Result<ProbeReport, String> {
    let query = loosedb_query::parse(src, db.store_interner_mut()).map_err(|e| e.to_string())?;
    let view = db.view().map_err(|e| e.to_string())?;
    Ok(probe(&query, &view, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use loosedb_engine::Database;

    /// The §5.2 world: free things that all students love.
    fn paper_world() -> Database {
        let mut db = Database::new();
        // Taxonomy assumed by the paper.
        db.add("FRESHMAN", "gen", "STUDENT");
        db.add("LOVE", "gen", "LIKE");
        db.add("FREE", "gen", "CHEAP");
        // COSTS has no parent: its minimal generalization is Δ.
        // Data: freshmen love free things; students like free things —
        // but nothing makes the original query succeed.
        db.add("FRESHMAN", "LOVE", "MUSIC-DOWNLOAD");
        db.add("MUSIC-DOWNLOAD", "COSTS", "FREE");
        db.add("STUDENT", "LIKE", "LIBRARY");
        db.add("LIBRARY", "COSTS", "FREE");
        db.add("STUDENT", "LOVE", "COFFEE");
        db.add("COFFEE", "COSTS", "CHEAP");
        db
    }

    const PAPER_QUERY: &str = "Q(?z) := (STUDENT, LOVE, ?z) & (?z, COSTS, FREE)";

    #[test]
    fn paper_section_5_2_retraction_set() {
        let mut db = paper_world();
        let query = loosedb_query::parse(PAPER_QUERY, db.store_interner_mut()).unwrap();
        let view = db.view().unwrap();
        let taxonomy = Taxonomy::new(view.closure());
        let mut missing = BTreeSet::new();
        let retractions = retraction_set(&query, &taxonomy, &mut missing);
        let rendered: Vec<String> =
            retractions.iter().map(|(q, _)| q.render(view.interner())).collect();
        // The four minimally broader queries of §5.2.
        assert!(rendered.iter().any(|r| r.contains("(FRESHMAN, LOVE, ?z)")), "{rendered:?}");
        assert!(rendered.iter().any(|r| r.contains("(STUDENT, LIKE, ?z)")), "{rendered:?}");
        assert!(rendered.iter().any(|r| r.contains("(?z, TOP, FREE)")), "{rendered:?}");
        assert!(rendered.iter().any(|r| r.contains("(?z, COSTS, CHEAP)")), "{rendered:?}");
        // Exactly the paper's four minimally broader queries.
        assert_eq!(retractions.len(), 4);
        assert!(missing.is_empty());
    }

    #[test]
    fn paper_section_5_2_menu() {
        let mut db = paper_world();
        let report = probe_text(PAPER_QUERY, &mut db, &ProbeOptions::default()).unwrap();
        assert!(matches!(report.outcome, ProbeOutcome::RetractionsSucceeded { wave: 0 }));
        let menu = report.render_menu(db.store().interner());
        assert!(menu.starts_with("Query failed. Retrying"));
        // The paper's two successes.
        assert!(menu.contains("with FRESHMAN instead of STUDENT"), "{menu}");
        assert!(menu.contains("with CHEAP instead of FREE"), "{menu}");
        assert!(menu.contains("You may select"));
        // LIKE also succeeds in our data (students like the free library).
        assert!(menu.contains("with LIKE instead of LOVE"), "{menu}");
    }

    #[test]
    fn successful_query_needs_no_retraction() {
        let mut db = paper_world();
        db.add("STUDENT", "LOVE", "SUNSHINE");
        db.add("SUNSHINE", "COSTS", "FREE");
        let report = probe_text(PAPER_QUERY, &mut db, &ProbeOptions::default()).unwrap();
        assert!(matches!(report.outcome, ProbeOutcome::Succeeded(_)));
        assert!(report.waves.is_empty());
    }

    #[test]
    fn successful_attempts_carry_answers() {
        let mut db = paper_world();
        let report = probe_text(PAPER_QUERY, &mut db, &ProbeOptions::default()).unwrap();
        let wave = &report.waves[0];
        for attempt in wave.successes() {
            let answer = attempt.answer.as_ref().unwrap();
            assert!(answer.succeeded());
        }
        // The FRESHMAN broadening finds the music download.
        let freshman_attempt = wave
            .attempts
            .iter()
            .find(|a| a.steps.iter().any(|s| matches!(s, RetractionStep::Specialized { .. })))
            .unwrap();
        let names: Vec<String> = freshman_attempt
            .answer
            .as_ref()
            .unwrap()
            .single_column()
            .unwrap()
            .iter()
            .map(|&e| db.display(e))
            .collect();
        assert_eq!(names, vec!["MUSIC-DOWNLOAD".to_string()]);
    }

    #[test]
    fn misspelled_entity_reported() {
        // §5.2: (JOHN, LOVES, z) where LOVES is not a database entity.
        let mut db = Database::new();
        db.add("JOHN", "ADORES", "MARY");
        let report = probe_text("(JOHN, LOVES, ?z)", &mut db, &ProbeOptions::default()).unwrap();
        match &report.outcome {
            ProbeOutcome::NoSuchEntities(missing) => {
                let names: Vec<String> = missing.iter().map(|&e| db.display(e)).collect();
                assert!(names.contains(&"LOVES".to_string()), "{names:?}");
            }
            other => panic!("expected NoSuchEntities, got {other:?}"),
        }
    }

    #[test]
    fn second_wave_reached_when_first_fails() {
        // Taxonomy two levels deep; data only matches at the grandparent.
        let mut db = Database::new();
        db.add("OPERA", "gen", "MUSIC");
        db.add("MUSIC", "gen", "ART");
        db.add("JOHN", "LOVES", "ART");
        let report = probe_text("(JOHN, LOVES, OPERA)", &mut db, &ProbeOptions::default()).unwrap();
        match report.outcome {
            ProbeOutcome::RetractionsSucceeded { wave } => assert_eq!(wave, 1),
            other => panic!("{other:?}"),
        }
        // Wave 1 contains MUSIC (failed); wave 2 contains ART (success).
        assert_eq!(report.waves.len(), 2);
        let steps: Vec<&RetractionStep> =
            report.waves[1].successes().flat_map(|a| a.steps.iter()).collect();
        assert_eq!(steps.len(), 2); // two chained generalizations
    }

    #[test]
    fn degenerate_template_deleted() {
        // After generalizing everything to Δ, the template is dropped; the
        // remaining conjunct can then succeed.
        let mut db = Database::new();
        db.add("JOHN", "LIKES", "FELIX");
        db.add("GHOST-REL", "gen", "TOP-REL"); // unrelated
        let mut missing = BTreeSet::new();
        let query = loosedb_query::parse(
            "Q(?z) := exists ?x . (JOHN, LIKES, ?z) & (?x, TOP, ?z)",
            db.store_interner_mut(),
        )
        .unwrap();
        let view = db.view().unwrap();
        let taxonomy = Taxonomy::new(view.closure());
        let retractions = retraction_set(&query, &taxonomy, &mut missing);
        let deleted: Vec<&(Query, RetractionStep)> = retractions
            .iter()
            .filter(|(_, s)| matches!(s, RetractionStep::DeletedTemplate { .. }))
            .collect();
        assert_eq!(deleted.len(), 1);
        assert_eq!(deleted[0].0.formula.atoms().len(), 1);
    }

    #[test]
    fn critical_failure_flagged() {
        // Both minimal broadenings succeed but the conjunction fails.
        let mut db = Database::new();
        db.add("LOVE", "gen", "LIKE");
        db.add("FREE", "gen", "CHEAP");
        db.add("STUDENT", "LIKE", "BOOK-X"); // LIKE version succeeds
        db.add("BOOK-X", "COSTS", "FREE");
        db.add("STUDENT", "LOVE", "COFFEE"); // CHEAP version succeeds
        db.add("COFFEE", "COSTS", "CHEAP");
        // (avoid FRESHMAN/Δ side-retractions by leaving STUDENT/COSTS
        // without children/parents only where needed)
        let report = probe_text(
            "Q(?z) := (STUDENT, LOVE, ?z) & (?z, COSTS, FREE)",
            &mut db,
            &ProbeOptions::default(),
        )
        .unwrap();
        match report.outcome {
            ProbeOutcome::RetractionsSucceeded { wave: 0 } => {}
            ref other => panic!("{other:?}"),
        }
        // Not necessarily critical: STUDENT→∇ and COSTS→Δ broadenings may
        // fail. Check the flag agrees with the attempts.
        let all = report.waves[0].attempts.iter().all(Attempt::succeeded);
        assert_eq!(report.critical, all);
    }

    #[test]
    fn unenumerable_query_rescued_by_generalization() {
        // (?x, !=, ?y) cannot be evaluated (both sides free); probing
        // treats the error as failure and generalizes ≠ — whose only
        // minimal generalization is Δ — into (?x, Δ, ?y), which succeeds
        // as soon as any projectable fact exists.
        let mut db = Database::new();
        db.add("JOHN", "LIKES", "FELIX");
        let report = probe_text("(?x, !=, ?y)", &mut db, &ProbeOptions::default()).unwrap();
        match &report.outcome {
            ProbeOutcome::RetractionsSucceeded { wave } => {
                let menu = report.render_menu(db.store().interner());
                assert!(menu.contains("with TOP instead of !="), "{menu}");
                assert_eq!(*wave, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn probe_over_inconsistent_database_still_works() {
        // §2.6 allows inconsistent facts; retrieval (and hence probing)
        // keeps functioning.
        let mut db = Database::new();
        db.add("LOVES", "contra", "HATES");
        db.add("JOHN", "LOVES", "MARY");
        db.add("JOHN", "HATES", "MARY");
        db.add("ADORES", "gen", "LOVES");
        assert!(!db.is_consistent().unwrap());
        let report = probe_text("(JOHN, ADORES, ?x)", &mut db, &ProbeOptions::default()).unwrap();
        assert!(matches!(report.outcome, ProbeOutcome::RetractionsSucceeded { wave: 0 }));
    }

    #[test]
    fn attempt_cap_limits_wave_size() {
        // A constant with many minimal generalizations explodes the wave;
        // max_attempts_per_wave bounds it.
        let mut db = Database::new();
        for i in 0..50 {
            db.add("THING", "gen", format!("KIND-{i}"));
        }
        db.add("JOHN", "WANTS", "THING");
        db.remove(&{
            let john = db.lookup_symbol("JOHN").unwrap();
            let wants = db.lookup_symbol("WANTS").unwrap();
            let thing = db.lookup_symbol("THING").unwrap();
            loosedb_store::Fact::new(john, wants, thing)
        });
        db.add("JOHN", "WANTS", "SOMETHING-ELSE");
        let opts = ProbeOptions { max_attempts_per_wave: 10, ..Default::default() };
        let report = probe_text("(JOHN, NEEDS, THING)", &mut db, &opts).unwrap();
        for wave in &report.waves {
            assert!(wave.attempts.len() <= 10);
        }
    }

    #[test]
    fn wave_budget_respected() {
        let mut db = Database::new();
        // A deep chain that can never succeed.
        for i in 0..20 {
            db.add(format!("L{i}"), "gen", format!("L{}", i + 1));
        }
        db.add("JOHN", "WANTS", "L0");
        let opts = ProbeOptions { max_waves: 3, ..Default::default() };
        let report = probe_text("(ROBERT, WANTS, L0)", &mut db, &opts).unwrap();
        assert!(report.waves.len() <= 3);
    }

    #[test]
    fn wave_table_renders() {
        let mut db = paper_world();
        let report = probe_text(PAPER_QUERY, &mut db, &ProbeOptions::default()).unwrap();
        let table = report.wave_table(0, db.store().interner());
        let rendered = table.to_string();
        assert!(rendered.contains("query"));
        assert!(rendered.contains("outcome"));
        assert!(rendered.contains("success"));
    }
}
