//! # loosedb
//!
//! A complete implementation of *Browsing in a Loosely Structured
//! Database* (Amihai Motro, SIGMOD 1984): a database that is a schema-free
//! "heap of facts" with a single rule mechanism for inference and
//! integrity, a predicate-logic query language, and browsing — by
//! **navigation** and by **probing** with automatic retraction — as the
//! principal retrieval method.
//!
//! This crate is the facade over the workspace:
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | storage | [`store`] | entities, facts, triple indexes, persistence |
//! | inference | [`engine`] | rules, §3 closure, integrity, [`Database`] |
//! | queries | [`query`] | §2.7 formulas: parser and evaluator |
//! | browsing | [`browse`] | §4 navigation, §5 probing, §6 operators |
//! | workloads | [`datagen`] | seeded worlds and synthetic generators |
//! | observability | [`obs`] | metrics registry, tracing spans, Prometheus export |
//! | serving | [`serve`] | multi-session network server, binary protocol, client |
//!
//! ## Quickstart
//!
//! ```
//! use loosedb::{Database, Session};
//!
//! // A database is built fact by fact — no schema (§2).
//! let mut db = Database::new();
//! db.add("JOHN", "isa", "EMPLOYEE");
//! db.add("EMPLOYEE", "EARNS", "SALARY");
//! db.add("JOHN", "FAVORITE-MUSIC", "PC#9-WAM");
//!
//! let mut session = Session::new(db);
//!
//! // Standard queries (§2.7) run against the inference closure (§3):
//! // John earns a salary by membership inference.
//! let answer = session.query("(?who, EARNS, SALARY)").unwrap();
//! assert_eq!(answer.len(), 2); // EMPLOYEE and JOHN
//!
//! // Navigation (§4): examine John's neighborhood.
//! let table = session.focus("JOHN").unwrap();
//! assert!(table.to_string().contains("PC#9-WAM"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use loosedb_browse as browse;
pub use loosedb_datagen as datagen;
pub use loosedb_engine as engine;
pub use loosedb_obs as obs;
pub use loosedb_query as query;
pub use loosedb_serve as serve;
pub use loosedb_store as store;

pub use loosedb_obs::{Metrics, MetricsSnapshot};

pub use loosedb_browse::{
    function, navigate, paths_between, probe, probe_text, relation, semantic_distance, try_entity,
    CacheStats, Definitions, FunctionView, GroupedTable, NavigateOptions, ProbeOptions,
    ProbeOutcome, ProbeReport, RelationTable, RetractionStep, Session, SessionError,
    ShardedSession, SharedSession,
};
pub use loosedb_engine::{
    Builtin, Closure, ClosureError, ClosureView, Database, DeltaSummary, DomainCounts,
    DurableDatabase, DurableError, ExtendDelta, FactView, Generation, InferenceConfig,
    KindRegistry, MathTruth, PollReport, Provenance, Prover, PublishDelta, RecoveryInfo, RelKind,
    Replica, ReplicaError, ReplicaInfo, ReplicaOptions, Rule, RuleGroup, RuleKind, ShardStats,
    ShardedDatabase, ShardedError, ShardedSnapshot, SharedDatabase, Strategy, SyncPolicy, Taxonomy,
    Template, Term, TransactionError, Var, Violation,
};
pub use loosedb_query::{
    eval, eval_with, explain_plan, parse, parse_frozen, Answer, AtomOrdering, EvalOptions, Formula,
    FrozenParseError, Query,
};
pub use loosedb_store::{
    special, EntityId, EntityValue, Fact, FactLog, FactStore, Interner, PMap, PSet, Pattern,
};
