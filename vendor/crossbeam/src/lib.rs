//! Offline shim for the [`crossbeam`](https://docs.rs/crossbeam) crate:
//! scoped threads over `std::thread::scope` (see `vendor/` in the
//! repository root).
//!
//! One semantic difference from real crossbeam: if a spawned thread
//! panics and its handle is never joined, [`thread::scope`] propagates
//! the panic (std semantics) instead of returning `Err` — callers that
//! `.expect()` the scope result observe a test failure either way.

#![warn(rust_2018_idioms)]

/// Scoped thread spawning.
pub mod thread {
    use std::any::Any;

    /// The result of joining a thread: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to the [`scope`] closure.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// The argument passed to every spawned closure. Real crossbeam
    /// passes a nested `&Scope`; the loosedb codebase always ignores it,
    /// so this shim passes an inert placeholder.
    #[derive(Clone, Copy, Debug)]
    pub struct SpawnScope;

    /// A handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread; `Err` carries a panic payload.
        pub fn join(self) -> Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread bound to the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(SpawnScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.inner.spawn(move || f(SpawnScope)))
        }
    }

    /// Runs `f` with a scope in which borrowing, scoped threads can be
    /// spawned; returns after all of them finish.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let total: i32 = super::thread::scope(|scope| {
            let handles: Vec<_> =
                data.chunks(2).map(|part| scope.spawn(move |_| part.iter().sum::<i32>())).collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn join_reports_panics() {
        let caught = super::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .expect("scope");
        assert!(caught);
    }
}
