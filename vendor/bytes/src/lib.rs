//! Offline shim for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this workspace carries minimal in-repo implementations of the small
//! API subsets it actually uses (see `vendor/` in the repository root).
//! This crate provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`]
//! traits with the methods the loosedb codec layers call. Semantics match
//! the real crate for that subset; cheap zero-copy cloning/slicing of
//! [`Bytes`] is preserved via `Arc`.

#![warn(rust_2018_idioms)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Read access to a contiguous, consumable buffer of bytes.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes into `dst`, consuming them.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copies `len` bytes out as an owned [`Bytes`], consuming them.
    ///
    /// # Panics
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A cheaply cloneable, sliceable, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Wraps a static slice (copied here; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-range sharing the same backing allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

/// A growable byte buffer; freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
    /// Read cursor so `BytesMut` can also act as a [`Buf`].
    cursor: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap), cursor: 0 }
    }

    /// Length of the unconsumed bytes.
    pub fn len(&self) -> usize {
        self.inner.len() - self.cursor
    }

    /// True if no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner).slice(self.cursor..)
    }

    /// Discards the contents.
    pub fn clear(&mut self) {
        self.inner.clear();
        self.cursor = 0;
    }

    /// The unconsumed bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.inner[self.cursor..]
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&Bytes::copy_from_slice(self.as_slice()), f)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.cursor += cnt;
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_i64_le(-42);
        buf.put_f64_le(2.5);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 0xBEEF);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.get_f64_le(), 2.5);
        let mut rest = [0u8; 3];
        b.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xyz");
        assert!(!b.has_remaining());
    }

    #[test]
    fn bytes_slice_is_zero_copy_and_cheap_to_clone() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let c = s.clone();
        assert_eq!(c, s);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn slice_buf_advances() {
        let data = [1u8, 2, 3];
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.remaining(), 2);
        let rest = s.copy_to_bytes(2);
        assert_eq!(&rest[..], &[2, 3]);
    }
}
