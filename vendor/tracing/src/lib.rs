//! Minimal offline shim of the `tracing` crate: the API subset
//! `loosedb-obs` needs for structured spans.
//!
//! The build environment has no network or registry access, so this
//! shim mirrors the upstream surface (spans with typed fields, an
//! `enter()` guard, a collector) in a deliberately small way:
//!
//! - a [`Span`] is a name plus `(key, Value)` fields;
//! - entering a span returns an [`EnteredSpan`] guard that measures
//!   wall-clock duration and records the parent from a thread-local
//!   span stack;
//! - finished spans land in a bounded global ring buffer
//!   ([`collector`]) that callers drain explicitly — there is no
//!   subscriber machinery.
//!
//! Capture is off by default: when [`collector::capturing`] is false,
//! span construction short-circuits to a no-op so instrumented hot
//! paths pay one relaxed atomic load.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A typed span-field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer field (counts, sizes, epochs).
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field.
    F64(f64),
    /// Boolean field (e.g. cache hit/miss disposition).
    Bool(bool),
    /// String field.
    Str(String),
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A finished span as stored by the collector.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Static span name (e.g. `"engine.publish"`).
    pub name: &'static str,
    /// Name of the innermost enclosing span on the same thread, if any.
    pub parent: Option<&'static str>,
    /// Recorded fields, in record order.
    pub fields: Vec<(&'static str, Value)>,
    /// Wall-clock duration from `enter()` to drop, in nanoseconds.
    pub nanos: u64,
}

/// An unstarted span: a name and its initial fields.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    fields: Vec<(&'static str, Value)>,
}

impl Span {
    /// Creates a span with no fields.
    pub fn new(name: &'static str) -> Self {
        Span { name, fields: Vec::new() }
    }

    /// Adds a field (builder style).
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Starts timing the span and pushes it on the thread-local stack.
    pub fn enter(self) -> EnteredSpan {
        let parent = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(self.name);
            parent
        });
        EnteredSpan { span: self, parent, start: Instant::now() }
    }
}

/// RAII guard for an active span; the span is reported on drop.
#[derive(Debug)]
pub struct EnteredSpan {
    span: Span,
    parent: Option<&'static str>,
    start: Instant,
}

impl EnteredSpan {
    /// Records an additional field on the active span.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        self.span.fields.push((key, value.into()));
    }
}

impl Drop for EnteredSpan {
    fn drop(&mut self) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        collector::push(SpanRecord {
            name: self.span.name,
            parent: self.parent,
            fields: std::mem::take(&mut self.span.fields),
            nanos: self.start.elapsed().as_nanos() as u64,
        });
    }
}

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The global bounded span buffer.
pub mod collector {
    use super::*;

    /// Most spans retained; older spans are dropped first.
    pub const CAPACITY: usize = 4096;

    static CAPTURING: AtomicBool = AtomicBool::new(false);
    static BUFFER: Mutex<VecDeque<SpanRecord>> = Mutex::new(VecDeque::new());

    /// Enables or disables span capture globally.
    pub fn set_capture(on: bool) {
        CAPTURING.store(on, Ordering::Relaxed);
        if !on {
            BUFFER.lock().expect("span buffer").clear();
        }
    }

    /// Whether spans are currently being captured (one relaxed load —
    /// this is the hot-path check instrumented code performs before
    /// building a span at all).
    pub fn capturing() -> bool {
        CAPTURING.load(Ordering::Relaxed)
    }

    /// Appends a finished span, evicting the oldest past [`CAPACITY`].
    pub fn push(record: SpanRecord) {
        if !capturing() {
            return;
        }
        let mut buf = BUFFER.lock().expect("span buffer");
        if buf.len() == CAPACITY {
            buf.pop_front();
        }
        buf.push_back(record);
    }

    /// Removes and returns all captured spans, oldest first.
    pub fn drain() -> Vec<SpanRecord> {
        BUFFER.lock().expect("span buffer").drain(..).collect()
    }
}

/// Builds a [`Span`] with optional `key = value` fields:
/// `span!("engine.publish", epoch = 3u64)`.
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {{
        $crate::Span::new($name)$(.with(stringify!($key), $value))*
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_fields_duration_and_parent() {
        collector::set_capture(true);
        {
            let outer = span!("outer", epoch = 7u64).enter();
            {
                let mut inner = span!("inner").enter();
                inner.record("rows", 3u64);
            }
            drop(outer);
        }
        let spans = collector::drain();
        collector::set_capture(false);
        // Inner drops first, so it precedes outer in the buffer.
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].parent, Some("outer"));
        assert_eq!(spans[0].fields, vec![("rows", Value::U64(3))]);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].parent, None);
        assert_eq!(spans[1].fields, vec![("epoch", Value::U64(7))]);
    }

    #[test]
    fn capture_off_discards_spans() {
        collector::set_capture(false);
        drop(span!("ignored").enter());
        assert!(collector::drain().is_empty());
    }

    #[test]
    fn buffer_is_bounded() {
        collector::set_capture(true);
        for _ in 0..(collector::CAPACITY + 10) {
            drop(span!("filler").enter());
        }
        let spans = collector::drain();
        collector::set_capture(false);
        assert_eq!(spans.len(), collector::CAPACITY);
    }
}
