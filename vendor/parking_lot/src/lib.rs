//! Offline shim for the [`parking_lot`](https://docs.rs/parking_lot)
//! crate: [`Mutex`] and [`RwLock`] over `std::sync` with the
//! no-poisoning, guard-returning API (see `vendor/` in the repository
//! root). Lock poisoning is handled the way `parking_lot` behaves: a
//! panicked holder does not poison the lock for later users.

#![warn(rust_2018_idioms)]

use std::sync::{self, TryLockError};

/// A mutex whose `lock` returns the guard directly (no poison `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// A guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// A shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;

/// An exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts the write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_into_inner() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_is_not_poisoned_by_panics() {
        let lock = std::sync::Arc::new(Mutex::new(0));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*lock.lock(), 0);
    }
}
