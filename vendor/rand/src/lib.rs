//! Offline shim for the [`rand`](https://docs.rs/rand) crate.
//!
//! Provides deterministic seeded RNGs ([`rngs::StdRng`], [`rngs::SmallRng`],
//! both xoshiro256++ seeded via SplitMix64) and the [`Rng`] methods the
//! loosedb workloads use (`gen_range`, `gen_bool`, `gen`). Statistical
//! quality is adequate for workload generation and property tests; this is
//! not the real `rand` crate (see `vendor/` in the repository root).

#![warn(rust_2018_idioms)]

use std::ops::Range;

/// A random number generator core: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges that support uniform single-value sampling.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Widening-multiply rejection-free mapping: bias is
                // negligible for spans far below 2^64 (always true here).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as $t;
                self.start + hi
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let x = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the exclusive bound.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ state, seeded via SplitMix64 (Blackman & Vigna).
    #[derive(Clone, Debug)]
    pub struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_seed_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Xoshiro256 { s }
        }
    }

    impl RngCore for Xoshiro256 {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The standard seeded generator (here: xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_seed_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// The small/fast generator (same core as [`StdRng`] in this shim).
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_seed_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100).all(|_| a.gen_range(0u64..1 << 60) == c.gen_range(0u64..1 << 60));
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-50i64..-10);
            assert!((-50..-10).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }
}
