//! Offline shim for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! A plain timing harness with criterion's bench-declaration API (see
//! `vendor/` in the repository root): groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter`. Each benchmark runs
//! `sample_size` timed samples after one warm-up and reports
//! min/median/mean. No statistical analysis, HTML reports, or baseline
//! comparison — numbers are indicative, which is all the loosedb
//! experiment tables claim.

#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10 }
    }
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id like `name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId { label: label.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), target: self.sample_size };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new(), target: self.sample_size };
        f(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{}: no samples", self.name, id.label);
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{}/{}: min {}  median {}  mean {}  ({} samples)",
            self.name,
            id.label,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len()
        );
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Runs the routine once for warm-up, then `sample_size` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.target {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; this shim has no
            // CLI and ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("with-input", 2), &21u32, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert_eq!(runs, 4); // 1 warm-up + 3 samples
    }
}
