//! Offline shim for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! A deterministic, non-shrinking property-test runner with the strategy
//! combinators loosedb's tests use: numeric ranges, tuples, collection
//! vectors, `any`, `prop_map`, and character-class string patterns (see
//! `vendor/` in the repository root). Failing cases report their inputs
//! but are not minimized; seeds derive from the test name, so runs are
//! reproducible.

#![warn(rust_2018_idioms)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed test case (carried by `prop_assert!`-style macros).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// The RNG handed to strategies.
pub struct TestRng(StdRng);

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Drives the cases of one property test.
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner seeded deterministically from the test name and
    /// the `PROPTEST_RNG_SEED` environment variable (if set and
    /// parseable as `u64`). Seed `0` — what CI pins — reproduces the
    /// bare per-name stream byte for byte; any other value perturbs
    /// every test's stream reproducibly, so a nightly job can explore
    /// fresh corpora while any failure stays one `PROPTEST_RNG_SEED=N`
    /// away from replay.
    pub fn new(test_name: &str) -> Self {
        let extra = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        TestRunner { rng: TestRng(StdRng::seed_from_u64(Self::seed_for(test_name, extra))) }
    }

    /// The seed for `test_name` under an explicit perturbation: FNV-1a
    /// of the name, XORed with the perturbation spread by a 64-bit odd
    /// multiplier (`extra == 0` leaves the name hash untouched).
    pub fn seed_for(test_name: &str, extra: u64) -> u64 {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        seed ^ extra.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// The RNG for generating the next case.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Uniform whole-domain sampling for [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: rand::Standard + fmt::Debug> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: rand::Standard + fmt::Debug>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// A string pattern strategy: character classes with repetition counts.
///
/// This shim supports the subset of regex syntax loosedb uses: a
/// sequence of literal characters or `[..]` classes (with `a-z` ranges),
/// each optionally followed by `{lo,hi}`.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet: Vec<char> = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in pattern {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().expect("checked");
                            let hi = chars.next().expect("peeked");
                            class.extend((lo..=hi).collect::<Vec<_>>());
                        }
                        Some(ch) => {
                            if let Some(p) = prev.replace(ch) {
                                class.push(p);
                            }
                        }
                    }
                }
                class.extend(prev);
                assert!(!class.is_empty(), "empty character class in pattern {pattern:?}");
                class
            }
            '\\' => vec![chars
                .next()
                .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"))],
            other => vec![other],
        };
        let (lo, hi) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&ch| ch != '}').collect();
            let (lo, hi) = spec.split_once(',').unwrap_or((spec.as_str(), spec.as_str()));
            (
                lo.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad repetition {spec:?} in pattern {pattern:?}")),
                hi.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad repetition {spec:?} in pattern {pattern:?}")),
            )
        } else {
            (1, 1)
        };
        let n = rng.gen_range(lo..hi + 1);
        for _ in 0..n {
            out.push(alphabet[rng.gen_range(0..alphabet.len())]);
        }
    }
    out
}

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// A strategy for `Vec`s with lengths drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Generates vectors of `element` values, `size` elements long.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.size.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property test; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_binds {
    ($runner:ident; $reprs:ident;) => {};
    ($runner:ident; $reprs:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::Strategy::generate(&($strat), $runner.rng());
        $reprs.push(format!("{} = {:?}", stringify!($arg), &$arg));
    };
    ($runner:ident; $reprs:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::generate(&($strat), $runner.rng());
        $reprs.push(format!("{} = {:?}", stringify!($arg), &$arg));
        $crate::__proptest_binds!($runner; $reprs; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    // Attributes (doc comments and `#[test]` itself) pass through; the
    // source's `#[test]` marker is matched by the `$meta` repetition.
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(stringify!($name));
            for case in 0..config.cases {
                let mut reprs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $crate::__proptest_binds!(runner; reprs; $($params)*);
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property failed at case {}/{}: {}\ninputs:\n  {}",
                        case + 1,
                        config.cases,
                        e,
                        reprs.join("\n  ")
                    );
                }
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

/// Declares property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Tuples, ranges, vec and map compose.
        #[test]
        fn combinators_generate_in_bounds(
            pair in (0u8..10, 0i64..5).prop_map(|(a, b)| (a, b + 1)),
            items in prop::collection::vec(0u32..7, 0..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(pair.0 < 10);
            prop_assert!((1..=5).contains(&pair.1));
            prop_assert!(items.len() < 20);
            prop_assert!(items.iter().all(|&x| x < 7));
            let _ = flag;
        }

        /// Single-parameter form without a trailing comma.
        #[test]
        fn string_pattern_generates_printables(s in "[ -~]{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        use crate::{Strategy, TestRunner};
        let mut a = TestRunner::new("x");
        let mut b = TestRunner::new("x");
        let s = 0u32..1000;
        let va: Vec<u32> = (0..50).map(|_| s.generate(a.rng())).collect();
        let vb: Vec<u32> = (0..50).map(|_| s.generate(b.rng())).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn env_seed_perturbs_reproducibly_and_zero_is_identity() {
        use crate::TestRunner;
        // Zero (CI's pin) reproduces the bare name hash.
        assert_eq!(TestRunner::seed_for("t", 0), TestRunner::seed_for("t", 0));
        let bare = TestRunner::seed_for("t", 0);
        // A non-zero perturbation changes the seed but stays a pure
        // function of (name, extra).
        assert_ne!(TestRunner::seed_for("t", 7), bare);
        assert_eq!(TestRunner::seed_for("t", 7), TestRunner::seed_for("t", 7));
        // Distinct names stay distinct under the same perturbation.
        assert_ne!(TestRunner::seed_for("t", 7), TestRunner::seed_for("u", 7));
    }
}
