//! An interactive browser for loosely structured databases: navigation,
//! probing, standard queries and the §6 operators from one prompt.
//!
//! Run with `cargo run --example browse_repl`, then type `help`.
//! Commands can also be piped in:
//!
//! ```text
//! printf 'world music\nfocus JOHN\nprobe (JOHN, ADORES, ?x)\n' \
//!   | cargo run --example browse_repl
//! ```

use std::io::{self, BufRead, Write};
use std::sync::Arc;

use loosedb::datagen::{company, music_world, probing_world, university};
use loosedb::{
    Database, Replica, RuleGroup, Session, ShardedDatabase, ShardedSession, SharedSession,
    SyncPolicy,
};

const HELP: &str = "\
commands:
  world <music|probing|university|company|empty>   load a world
  focus <entity>               show the (E,*,*) neighborhood, push focus
  back                         return to the previous focus
  try <entity>                 the try(e) operator: all facts mentioning e
  nav <s> <r> <t>              navigate any template ('*' = free position)
  query <formula>              evaluate a standard query (§2.7 syntax)
  probe <formula>              evaluate with automatic retraction (§5)
  add <s> <r> <t>              insert a fact (unchecked)
  tryadd <s> <r> <t>           insert with integrity check (§2.5)
  del <s> <r> <t>              remove a fact
  explain <s> <r> <t>          derivation of a closure fact
  include <group> | exclude <group>   toggle a §3 rule group
  limit <n>                    composition chain limit (§6.1)
  dist <a> <b>                 semantic distance (§6.1), up to 6 hops
  plan <formula>               show the evaluation plan without running
  fn <rel> [class]             functional view of a relationship (§6.1)
  import <path> | export <path>   plain-text fact files
  save <path> | load <path>    full-database image (facts+rules+config)
  stats                        database statistics
  metrics                      observability counters (Prometheus text format)
  spans <on|off|show>          capture / dump tracing spans (needs --features obs)
  history                      focus history
  replica <leader-dir> [local-dir]   attach as a WAL-shipped read replica
  sync                         (replica mode) poll the leader once
  catchup                      (replica mode) drain the backlog
  promote <dir>                (replica mode) fail over to a writable journal
  detach                       leave replica mode, keeping the replicated data
  shards <n>                   repartition the current facts across n shards
  shards                       (sharded mode) per-shard status table
  shards off                   leave sharded mode, merging the shards back
  connect <addr> [tenant]      attach to a loosedb-serve server (binary protocol)
  disconnect                   leave connected mode, back to the local session
  help                         this text
  quit                         exit
(replica mode is read-only: browse commands serve from the follower's
 snapshots; editing commands need 'detach' or 'promote' first)
(sharded mode supports browsing, queries, probes and add/tryadd/del;
 rule-group and persistence commands need 'shards off' first)
(connected mode runs nav/query/probe/add/tryadd/del/metrics against the
 server; the local session waits untouched behind 'disconnect')
(commands also accept a leading ':', e.g. ':metrics')";

/// Replica-mode state: the tailing [`Replica`] plus a [`SharedSession`]
/// serving reads off its generation snapshots.
struct ReplicaMode {
    replica: Replica,
    session: SharedSession,
}

/// Sharded-mode state: the hash-partitioned [`ShardedDatabase`] plus a
/// [`ShardedSession`] running scatter-gather reads over its per-shard
/// snapshots.
struct ShardedMode {
    db: Arc<ShardedDatabase>,
    session: ShardedSession,
}

/// Connected-mode state: a live session on a `loosedb-serve` server; the
/// server holds the session caches, the REPL is a thin terminal.
struct ConnectedMode {
    client: loosedb::serve::Client,
    addr: String,
}

struct Repl {
    session: Session,
    replica: Option<ReplicaMode>,
    sharded: Option<ShardedMode>,
    connected: Option<ConnectedMode>,
}

fn main() {
    let stdin = io::stdin();
    let mut repl = Repl {
        session: Session::new(music_world()),
        replica: None,
        sharded: None,
        connected: None,
    };
    println!("loosedb browser — music world loaded; type 'help' for commands");
    prompt(&repl);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            prompt(&repl);
            continue;
        }
        if trimmed == "quit" || trimmed == "exit" {
            break;
        }
        if let Err(e) = dispatch(&mut repl, trimmed) {
            println!("error: {e}");
        }
        prompt(&repl);
    }
    println!("bye");
}

fn prompt(repl: &Repl) {
    if repl.replica.is_some() {
        print!("(replica)> ");
    } else if let Some(mode) = &repl.sharded {
        print!("(sharded:{})> ", mode.db.shard_count());
    } else if let Some(mode) = &repl.connected {
        print!("({})> ", mode.addr);
    } else {
        print!("> ");
    }
    io::stdout().flush().ok();
}

/// Rebuilds a local editable [`Session`] from a replica's current
/// database (an encode/decode round-trip through the persist image).
fn local_session_from(shared: &loosedb::SharedDatabase) -> Result<Session, String> {
    let image = shared.read_writer(|db| loosedb::engine::persist::encode(db).to_vec());
    let db = loosedb::engine::persist::decode(&image[..]).map_err(|e| e.to_string())?;
    Ok(Session::new(db))
}

fn dispatch(repl: &mut Repl, line: &str) -> Result<(), String> {
    let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
    let cmd = cmd.strip_prefix(':').unwrap_or(cmd);
    let rest = rest.trim();

    // Replica-mode commands, and read routing to the follower session.
    match cmd {
        "replica" => {
            if repl.replica.is_some() {
                return Err("already in replica mode; 'detach' first".into());
            }
            if repl.sharded.is_some() {
                return Err("can't attach a replica in sharded mode; 'shards off' first".into());
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let (leader, local) = match parts.as_slice() {
                [leader] => ((*leader).to_string(), format!("{leader}-replica")),
                [leader, local] => ((*leader).to_string(), (*local).to_string()),
                _ => return Err("usage: replica <leader-dir> [local-dir]".into()),
            };
            let mut replica = Replica::open(&leader, &local).map_err(|e| e.to_string())?;
            let applied = replica.catch_up().map_err(|e| e.to_string())?;
            let info = replica.info();
            let cursor = replica.cursor();
            println!(
                "attached to {leader} ({}); caught up {applied} op(s), \
                 epoch {}, segment {}",
                if info.resumed { "resumed local state" } else { "bootstrapped from snapshot" },
                cursor.epoch,
                cursor.segment,
            );
            let session = SharedSession::new(replica.shared().clone());
            repl.replica = Some(ReplicaMode { replica, session });
            return Ok(());
        }
        "shards" => return shards_command(repl, rest),
        "connect" => {
            if repl.replica.is_some() || repl.sharded.is_some() {
                return Err("leave replica/sharded mode before connecting".into());
            }
            if let Some(mode) = &repl.connected {
                return Err(format!("already connected to {}; 'disconnect' first", mode.addr));
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let (addr, tenant) = match parts.as_slice() {
                [addr] => ((*addr).to_string(), String::new()),
                [addr, tenant] => ((*addr).to_string(), (*tenant).to_string()),
                _ => return Err("usage: connect <host:port> [tenant]".into()),
            };
            let client = loosedb::serve::Client::connect(addr.as_str(), &tenant)
                .map_err(|e| e.to_string())?;
            println!(
                "connected to {addr} as {} (session {}, epoch {})",
                if tenant.is_empty() { "the default tenant" } else { tenant.as_str() },
                client.session(),
                client.epoch(),
            );
            repl.connected = Some(ConnectedMode { client, addr });
            return Ok(());
        }
        "disconnect" => {
            let Some(mode) = repl.connected.take() else {
                return Err("not connected; see 'connect'".into());
            };
            let _ = mode.client.bye();
            println!("disconnected; local session restored");
            return Ok(());
        }
        "sync" | "catchup" | "promote" | "detach" => {
            let Some(mode) = repl.replica.as_mut() else {
                return Err(format!("{cmd} only works in replica mode; see 'replica'"));
            };
            match cmd {
                "sync" => {
                    let report = mode.replica.poll().map_err(|e| e.to_string())?;
                    println!(
                        "applied {} op(s), lag {} byte(s), live segment {}{}{}",
                        report.ops_applied,
                        report.lag_bytes,
                        report.live_segment,
                        if report.rotated { ", rotated" } else { "" },
                        if report.rebootstrapped { ", re-bootstrapped" } else { "" },
                    );
                }
                "catchup" => {
                    let applied = mode.replica.catch_up().map_err(|e| e.to_string())?;
                    println!("caught up: {applied} op(s) applied");
                }
                "promote" => {
                    if rest.is_empty() {
                        return Err("usage: promote <new-journal-dir>".into());
                    }
                    let ReplicaMode { replica, session } = repl.replica.take().expect("checked");
                    drop(session); // release the shared handle before promotion
                    let durable = replica
                        .promote(rest, SyncPolicy::OnCheckpoint)
                        .map_err(|e| e.to_string())?;
                    println!(
                        "promoted: writable journal at {rest} (generation {})",
                        durable.generation()
                    );
                    let image = loosedb::engine::persist::encode(durable.database_ref()).to_vec();
                    let db =
                        loosedb::engine::persist::decode(&image[..]).map_err(|e| e.to_string())?;
                    repl.session = Session::new(db);
                    println!("local session now holds the promoted data (read-write)");
                }
                _ => {
                    let mode = repl.replica.take().expect("checked");
                    repl.session = local_session_from(mode.replica.shared())?;
                    println!("detached; local session holds the replicated data (read-write)");
                }
            }
            return Ok(());
        }
        _ => {}
    }
    if let Some(mode) = repl.replica.as_mut() {
        let s = &mut mode.session;
        match cmd {
            "focus" | "f" => print!("{}", s.focus(rest).map_err(|e| e.to_string())?),
            "back" => print!("{}", s.back().map_err(|e| e.to_string())?),
            "try" => print!("{}", s.try_entity(rest).map_err(|e| e.to_string())?),
            "nav" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let [a, b, c] = parts.as_slice() else {
                    return Err("usage: nav <s> <r> <t>".into());
                };
                print!("{}", s.navigate_parts(a, b, c).map_err(|e| e.to_string())?);
            }
            "query" | "q" => {
                let generation = s.snapshot();
                let answer = s.query(rest).map_err(|e| e.to_string())?;
                print!("{}", answer.render(generation.interner()));
                println!("({} answer(s))", answer.len());
            }
            "probe" | "p" => {
                let report = s.probe(rest).map_err(|e| e.to_string())?;
                print!("{}", s.render_probe(&report));
            }
            "plan" => print!("{}", s.explain_query(rest).map_err(|e| e.to_string())?),
            "stats" => {
                let generation = s.snapshot();
                let stats = generation.store().stats();
                println!(
                    "{} facts, {} entities, {} distinct relationships (epoch {})",
                    stats.facts,
                    stats.entities,
                    stats.distinct_relationships,
                    generation.epoch()
                );
            }
            "metrics" => {
                let mode = repl.replica.as_ref().expect("checked");
                print!(
                    "{}",
                    loosedb::obs::prometheus_text(mode.replica.shared().metrics().registry())
                );
            }
            "help" => println!("{HELP}"),
            "spans" => return spans(rest),
            other => {
                return Err(format!(
                    "{other:?} is unavailable in replica mode (read-only); \
                     'detach' or 'promote <dir>' first"
                ))
            }
        }
        return Ok(());
    }
    if let Some(mode) = repl.sharded.as_mut() {
        let s = &mut mode.session;
        match cmd {
            "focus" | "f" => print!("{}", s.focus(rest).map_err(|e| e.to_string())?),
            "back" => print!("{}", s.back().map_err(|e| e.to_string())?),
            "try" => print!("{}", s.try_entity(rest).map_err(|e| e.to_string())?),
            "nav" => {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let [a, b, c] = parts.as_slice() else {
                    return Err("usage: nav <s> <r> <t>".into());
                };
                print!("{}", s.navigate_parts(a, b, c).map_err(|e| e.to_string())?);
            }
            "query" | "q" => {
                let snap = s.snapshot();
                let answer = s.query(rest).map_err(|e| e.to_string())?;
                print!("{}", answer.render(snap.interner()));
                println!("({} answer(s))", answer.len());
            }
            "probe" | "p" => {
                let report = s.probe(rest).map_err(|e| e.to_string())?;
                print!("{}", s.render_probe(&report));
            }
            "plan" => print!("{}", s.explain_query(rest).map_err(|e| e.to_string())?),
            "add" | "tryadd" | "del" => {
                let (a, b, c) = fact_args(cmd, rest)?;
                sharded_edit(&mode.db, cmd, &a, &b, &c)?;
            }
            "stats" => shard_status(&mode.db),
            "metrics" => {
                print!("{}", loosedb::obs::prometheus_text(mode.db.metrics().registry()));
            }
            "history" => {
                let snap = s.snapshot();
                let names: Vec<String> = s.history().iter().map(|&e| snap.display(e)).collect();
                println!(
                    "{}",
                    if names.is_empty() { "(empty)".to_string() } else { names.join(" → ") }
                );
            }
            "help" => println!("{HELP}"),
            "spans" => return spans(rest),
            other => {
                return Err(format!("{other:?} is unavailable in sharded mode; 'shards off' first"))
            }
        }
        return Ok(());
    }
    if let Some(mode) = repl.connected.as_mut() {
        let c = &mut mode.client;
        match cmd {
            "nav" | "focus" | "f" | "try" => {
                let (a, b, d) = if cmd == "nav" {
                    let parts: Vec<&str> = rest.split_whitespace().collect();
                    let [a, b, d] = parts.as_slice() else {
                        return Err("usage: nav <s> <r> <t>".into());
                    };
                    ((*a).to_string(), (*b).to_string(), (*d).to_string())
                } else {
                    // focus/try render the same neighborhood template.
                    (rest.to_string(), "*".into(), "*".into())
                };
                print!("{}", c.navigate(&a, &b, &d).map_err(|e| e.to_string())?);
            }
            "query" | "q" => {
                let result = c.query(rest).map_err(|e| e.to_string())?;
                for row in &result.rows {
                    println!("{}", row.join(" | "));
                }
                println!("({} answer(s), epoch {})", result.rows.len(), result.epoch);
            }
            "probe" | "p" => print!("{}", c.probe(rest).map_err(|e| e.to_string())?),
            "add" | "tryadd" => {
                let fact = fact_args(cmd, rest)?;
                let done = c.publish(cmd == "tryadd", vec![fact]).map_err(|e| e.to_string())?;
                println!("{} fact(s) applied (epoch {})", done.applied, done.epoch);
            }
            "del" => {
                let (a, b, d) = fact_args(cmd, rest)?;
                let done = c.retract(&a, &b, &d).map_err(|e| e.to_string())?;
                println!("{} fact(s) removed (epoch {})", done.applied, done.epoch);
            }
            "metrics" => print!("{}", c.metrics_text().map_err(|e| e.to_string())?),
            "help" => println!("{HELP}"),
            other => {
                return Err(format!(
                    "{other:?} is unavailable in connected mode; 'disconnect' first"
                ))
            }
        }
        return Ok(());
    }

    let session = &mut repl.session;
    match cmd {
        "help" => println!("{HELP}"),
        "world" => {
            let db: Database = match rest {
                "music" => music_world(),
                "probing" => probing_world(),
                "university" => university(&Default::default()),
                "company" => company(&Default::default()),
                "empty" => Database::new(),
                other => return Err(format!("unknown world {other:?}")),
            };
            *session = Session::new(db);
            println!("loaded {rest} ({} facts)", session.db().base_len());
        }
        "focus" | "f" => {
            let table = session.focus(rest).map_err(|e| e.to_string())?;
            print!("{table}");
        }
        "back" => {
            let table = session.back().map_err(|e| e.to_string())?;
            print!("{table}");
        }
        "try" => {
            let table = session.try_entity(rest).map_err(|e| e.to_string())?;
            print!("{table}");
        }
        "nav" => {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let [s, r, t] = parts.as_slice() else {
                return Err("usage: nav <s> <r> <t>".into());
            };
            let table = session.navigate_parts(s, r, t).map_err(|e| e.to_string())?;
            print!("{table}");
        }
        "query" | "q" => {
            let answer = session.query(rest).map_err(|e| e.to_string())?;
            print!("{}", answer.render(session.db().store().interner()));
            println!("({} answer(s))", answer.len());
        }
        "probe" | "p" => {
            let report = session.probe(rest).map_err(|e| e.to_string())?;
            print!("{}", report.render_menu(session.db().store().interner()));
        }
        "add" | "tryadd" | "del" | "explain" => {
            let (s, r, t) = fact_args(cmd, rest)?;
            edit(session, cmd, &s, &r, &t)?;
        }
        "include" | "exclude" => {
            let group =
                RuleGroup::from_name(rest).ok_or_else(|| format!("unknown rule group {rest:?}"))?;
            if cmd == "include" {
                session.db_mut().include(group);
            } else {
                session.db_mut().exclude(group);
            }
            println!("{cmd}d {group}");
        }
        "limit" => {
            let n: usize = rest.parse().map_err(|_| "usage: limit <n>".to_string())?;
            if n == 0 {
                return Err("limit must be at least 1".into());
            }
            session.db_mut().limit(n);
            println!("composition limit set to {n}");
        }
        "stats" => {
            let stats = session.db().store().stats();
            println!(
                "{} facts, {} entities, {} distinct relationships",
                stats.facts, stats.entities, stats.distinct_relationships
            );
            let closure = session.db_mut().closure().map_err(|e| e.to_string())?;
            let cs = closure.stats();
            println!(
                "closure: {} facts ({} derived, {} rounds), consistent: {}",
                closure.len(),
                cs.derived_facts,
                cs.rounds,
                closure.is_consistent()
            );
        }
        "dist" => {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let [a, b] = parts.as_slice() else {
                return Err("usage: dist <a> <b>".into());
            };
            let a = session.db().lookup_symbol(a).ok_or_else(|| format!("unknown entity {a:?}"))?;
            let b = session.db().lookup_symbol(b).ok_or_else(|| format!("unknown entity {b:?}"))?;
            let view = session.db_mut().view().map_err(|e| e.to_string())?;
            match loosedb::semantic_distance(&view, a, b, 6).map_err(|e| e.to_string())? {
                Some(d) => println!("semantic distance: {d}"),
                None => println!("no chain of ≤ 6 facts relates them"),
            }
        }
        "plan" => {
            let plan = session.explain_query(rest).map_err(|e| e.to_string())?;
            print!("{plan}");
        }
        "fn" => {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            let (rel, class) = match parts.as_slice() {
                [rel] => (*rel, None),
                [rel, class] => (*rel, Some(*class)),
                _ => return Err("usage: fn <rel> [target-class]".into()),
            };
            let f = session.function(rel, class).map_err(|e| e.to_string())?;
            println!(
                "{} source(s); {}",
                f.len(),
                if f.is_function() { "single-valued (a function)" } else { "multi-valued" }
            );
            for (src, targets) in f.entries.iter().take(20) {
                let names: Vec<String> = targets.iter().map(|&t| session.db().display(t)).collect();
                println!("  {} -> {}", session.db().display(*src), names.join(", "));
            }
            if f.len() > 20 {
                println!("  … ({} more)", f.len() - 20);
            }
        }
        "import" => {
            let text = std::fs::read_to_string(rest).map_err(|e| e.to_string())?;
            let added = session.db_mut().import_facts(&text).map_err(|e| e.to_string())?;
            println!("imported {added} new fact(s)");
        }
        "export" => {
            let (text, skipped) = session.db().export_facts();
            std::fs::write(rest, text).map_err(|e| e.to_string())?;
            println!("exported base facts to {rest} ({skipped} derived path fact(s) skipped)");
        }
        "save" => {
            session.db().save_full(rest).map_err(|e| e.to_string())?;
            println!("saved full database image to {rest}");
        }
        "load" => {
            let db = loosedb::Database::load_full(rest).map_err(|e| e.to_string())?;
            println!("loaded {} facts, {} rules", db.base_len(), db.rules().len());
            *session = Session::new(db);
        }
        "metrics" => {
            print!("{}", loosedb::obs::prometheus_text(session.db().metrics().registry()));
        }
        "spans" => return spans(rest),
        "history" => {
            let names: Vec<String> =
                session.history().iter().map(|&e| session.db().display(e)).collect();
            println!(
                "{}",
                if names.is_empty() { "(empty)".to_string() } else { names.join(" → ") }
            );
        }
        other => return Err(format!("unknown command {other:?}; type 'help'")),
    }
    Ok(())
}

/// The `shards` command: enter sharded mode (`shards <n>`), show the
/// per-shard status table (`shards`), or merge back out (`shards off`).
fn shards_command(repl: &mut Repl, rest: &str) -> Result<(), String> {
    if repl.replica.is_some() {
        return Err("shards is unavailable in replica mode; 'detach' first".into());
    }
    match rest {
        "" => {
            let Some(mode) = repl.sharded.as_ref() else {
                return Err("not in sharded mode; 'shards <n>' to partition".into());
            };
            shard_status(&mode.db);
            Ok(())
        }
        "off" => {
            let Some(mode) = repl.sharded.take() else {
                return Err("not in sharded mode; 'shards <n>' to partition".into());
            };
            // Re-import every shard's base facts into one local database;
            // broadcast copies dedup on insert.
            let mut db = Database::new();
            let mut merged = 0;
            for shard in mode.db.shards() {
                let text = shard.read_writer(|d| d.export_facts().0);
                merged += db.import_facts(&text).map_err(|e| e.to_string())?;
            }
            repl.session = Session::new(db);
            println!("left sharded mode; {merged} fact(s) merged into the local session");
            Ok(())
        }
        n => {
            if repl.sharded.is_some() {
                return Err("already in sharded mode; 'shards off' first".into());
            }
            let n: usize = n.parse().map_err(|_| "usage: shards <n> | shards off".to_string())?;
            if n == 0 {
                return Err("shard count must be at least 1".into());
            }
            let db = Arc::new(
                ShardedDatabase::from_store(n, repl.session.db().store())
                    .map_err(|e| e.to_string())?,
            );
            let stats = db.stats();
            let base: usize = stats.iter().map(|s| s.base_facts).sum();
            println!(
                "partitioned {} fact slot(s) across {n} shard(s) \
                 (broadcast facts counted once per shard); type 'shards' for status",
                base
            );
            let session = ShardedSession::new(Arc::clone(&db));
            repl.sharded = Some(ShardedMode { db, session });
            Ok(())
        }
    }
}

/// Per-shard status table for the `shards` / sharded-mode `stats` command.
fn shard_status(db: &ShardedDatabase) {
    println!("shard   epoch    base  closure  publishes");
    for (i, s) in db.stats().iter().enumerate() {
        println!(
            "{i:>5}  {:>6}  {:>6}  {:>7}  {:>9}",
            s.epoch, s.base_facts, s.closure_facts, s.publishes
        );
    }
}

/// Fact-editing commands in sharded mode, routed through the partition
/// router (owner shard or broadcast).
fn sharded_edit(db: &ShardedDatabase, cmd: &str, s: &str, r: &str, t: &str) -> Result<(), String> {
    let render = |db: &ShardedDatabase, f: &loosedb::Fact| {
        let snap = db.snapshot();
        format!("({}, {}, {})", snap.display(f.s), snap.display(f.r), snap.display(f.t))
    };
    match cmd {
        "add" => {
            let f = db.insert(value(s), value(r), value(t)).map_err(|e| e.to_string())?;
            println!("added to shard {}: {}", db.shard_of(f.s), render(db, &f));
        }
        "tryadd" => match db.try_insert(value(s), value(r), value(t)) {
            Ok(f) => println!("added to shard {}: {}", db.shard_of(f.s), render(db, &f)),
            Err(e) => println!("rejected: {e}"),
        },
        "del" => {
            let fact =
                loosedb::Fact::new(db.entity(value(s)), db.entity(value(r)), db.entity(value(t)));
            if db.remove(&fact).map_err(|e| e.to_string())? {
                println!("removed {}", render(db, &fact));
            } else {
                println!("no such fact");
            }
        }
        _ => unreachable!(),
    }
    Ok(())
}

/// The `spans` command, shared by local and replica mode.
fn spans(rest: &str) -> Result<(), String> {
    match rest {
        "on" => {
            loosedb::obs::trace::set_capture(true);
            if loosedb::obs::trace::capturing() {
                println!("span capture on");
            } else {
                println!("span capture unavailable (rebuild with --features obs)");
            }
        }
        "off" => {
            loosedb::obs::trace::set_capture(false);
            println!("span capture off");
        }
        "show" | "" => {
            let spans = loosedb::obs::trace::drain();
            if spans.is_empty() {
                println!("(no spans captured; try 'spans on' under --features obs)");
            }
            for s in &spans {
                println!("{}", loosedb::obs::trace::render_span(s));
            }
        }
        other => return Err(format!("usage: spans <on|off|show>, not {other:?}")),
    }
    Ok(())
}

/// Splits a fact-editing argument into its three names. Accepts both
/// the bare `S R T` spelling and the query-style `(S, R, T)` one —
/// without this, `add (JOHN, LIKES, OPERA)` would silently intern
/// `"(JOHN,"` as a brand-new entity and the write, though acked, would
/// never show up under JOHN.
fn fact_args(cmd: &str, rest: &str) -> Result<(String, String, String), String> {
    let trimmed = rest.trim();
    let trimmed = trimmed.strip_prefix('(').unwrap_or(trimmed);
    let trimmed = trimmed.strip_suffix(')').unwrap_or(trimmed);
    let parts: Vec<&str> =
        trimmed.split(|c: char| c == ',' || c.is_whitespace()).filter(|p| !p.is_empty()).collect();
    match parts.as_slice() {
        [s, r, t] => Ok(((*s).to_string(), (*r).to_string(), (*t).to_string())),
        _ => Err(format!("usage: {cmd} <s> <r> <t>  (or {cmd} (<s>, <r>, <t>))")),
    }
}

/// Parses a command-line token into an [`loosedb::EntityValue`]:
/// integers and floats stay numeric, everything else is a symbol.
fn value(text: &str) -> loosedb::EntityValue {
    if let Ok(i) = text.parse::<i64>() {
        i.into()
    } else if let Ok(f) = text.parse::<f64>() {
        loosedb::EntityValue::float(f)
    } else {
        loosedb::EntityValue::symbol(text)
    }
}

/// Fact-editing commands: `add`, `tryadd`, `del`, `explain`.
fn edit(session: &mut Session, cmd: &str, s: &str, r: &str, t: &str) -> Result<(), String> {
    let db = session.db_mut();
    match cmd {
        "add" => {
            let f = db.add(value(s), value(r), value(t));
            println!("added {}", db.display_fact(&f));
        }
        "tryadd" => match db.try_add(value(s), value(r), value(t)) {
            Ok(f) => println!("added {}", db.display_fact(&f)),
            Err(e) => println!("rejected: {e}"),
        },
        "del" => {
            let fact =
                loosedb::Fact::new(db.entity(value(s)), db.entity(value(r)), db.entity(value(t)));
            if db.remove(&fact) {
                println!("removed {}", db.display_fact(&fact));
            } else {
                println!("no such fact");
            }
        }
        "explain" => {
            let fact =
                loosedb::Fact::new(db.entity(value(s)), db.entity(value(r)), db.entity(value(t)));
            match db.explain(&fact).map_err(|e| e.to_string())? {
                Some(lines) => {
                    for line in lines {
                        println!("{line}");
                    }
                }
                None => println!("not in the closure"),
            }
        }
        _ => unreachable!(),
    }
    Ok(())
}
