//! A tour of probing (§5): retraction sets, waves, critical failures and
//! the misspelling diagnosis, with the machinery laid open.
//!
//! Run with `cargo run --example probing_tour`.

use loosedb::{Database, ProbeOutcome, Session};

fn main() {
    scenario_menu();
    scenario_waves();
    scenario_critical();
    scenario_misspelling();
}

/// The §5.2 scenario: the failure menu.
fn scenario_menu() {
    println!("=== 1. The §5.2 menu ===\n");
    let mut session = Session::new(loosedb::datagen::probing_world());
    println!("query: {}\n", loosedb::datagen::PROBING_QUERY);
    let report = session.probe(loosedb::datagen::PROBING_QUERY).expect("probe");
    print!("{}", report.render_menu(session.db().store().interner()));
    // The full wave, including the failed attempts.
    println!("\nwave detail:");
    print!("{}", report.wave_table(0, session.db().store().interner()));
}

/// A taxonomy the probe must climb wave by wave.
fn scenario_waves() {
    println!("\n=== 2. Climbing the broadness lattice ===\n");
    let mut db = Database::new();
    db.add("ESPRESSO", "gen", "COFFEE");
    db.add("COFFEE", "gen", "BEVERAGE");
    db.add("BEVERAGE", "gen", "CONSUMABLE");
    db.add("JOHN", "SELLS", "CONSUMABLE");
    let mut session = Session::new(db);

    println!("query: (JOHN, SELLS, ESPRESSO) — data exists only at CONSUMABLE\n");
    let report = session.probe("(JOHN, SELLS, ESPRESSO)").expect("probe");
    for (i, _) in report.waves.iter().enumerate() {
        println!("--- wave {} ---", i + 1);
        print!("{}", report.wave_table(i, session.db().store().interner()));
    }
    match report.outcome {
        ProbeOutcome::RetractionsSucceeded { wave } => {
            println!("\nfirst success in wave {}", wave + 1)
        }
        ref other => println!("\noutcome: {other:?}"),
    }
}

/// A critical failure: every minimal broadening succeeds, so the probe
/// has isolated exactly where the database cannot satisfy the query.
fn scenario_critical() {
    println!("\n=== 3. Critical failure (§5.2) ===\n");
    let mut db = Database::new();
    db.add("FRESHMAN", "gen", "STUDENT");
    db.add("LOVE", "gen", "LIKE");
    db.add("FREE", "gen", "CHEAP");
    db.add("FRESHMAN", "LOVE", "SWAG");
    db.add("SWAG", "COSTS", "FREE");
    db.add("STUDENT", "LIKE", "LIBRARY");
    db.add("LIBRARY", "COSTS", "FREE");
    db.add("STUDENT", "LOVE", "COFFEE");
    db.add("COFFEE", "COSTS", "CHEAP");
    db.add("COFFEE", "ADVERTISED-AS", "FREE");
    let mut session = Session::new(db);

    let q = "Q(?z) := (STUDENT, LOVE, ?z) & (?z, COSTS, FREE)";
    println!("query: {q}\n");
    let report = session.probe(q).expect("probe");
    print!("{}", report.render_menu(session.db().store().interner()));
    assert!(report.critical, "this scenario is constructed to be critical");
}

/// §5.2's closing example: an entity that is not in the database.
fn scenario_misspelling() {
    println!("\n=== 4. Misspelling diagnosis (§5.2) ===\n");
    let mut session = Session::new(loosedb::datagen::music_world());
    for q in ["(JOHN, LOOVES, ?x)", "(JOHN, LIKES, FELIKS)"] {
        println!("query: {q}");
        let report = session.probe(q).expect("probe");
        print!("{}", report.render_menu(session.db().store().interner()));
        println!();
    }
}
