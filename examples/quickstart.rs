//! Quickstart: build a loosely structured database fact by fact, query
//! it, browse it, and let probing rescue a failing query.
//!
//! Run with `cargo run --example quickstart`.

use loosedb::{Database, Session};

fn main() {
    // 1. A database is a heap of facts (§2) — no schema, no design phase.
    //    Schema-level facts (EMPLOYEE EARNS SALARY) and data-level facts
    //    (JOHN EARNS 25000) are stored uniformly.
    let mut db = Database::new();
    db.add("JOHN", "isa", "EMPLOYEE");
    db.add("MARY", "isa", "EMPLOYEE");
    db.add("MANAGER", "gen", "EMPLOYEE");
    db.add("SUE", "isa", "MANAGER");
    db.add("EMPLOYEE", "EARNS", "SALARY");
    db.add("JOHN", "EARNS", 25000i64);
    db.add("MARY", "EARNS", 18000i64);
    db.add("SUE", "EARNS", 40000i64);
    db.add("JOHN", "WORKS-FOR", "SHIPPING");
    db.add("SUE", "WORKS-FOR", "SHIPPING");
    db.add("WORKS-FOR", "inv", "EMPLOYS");
    db.add("ADORES", "gen", "LIKES");
    db.add("JOHN", "LIKES", "FELIX");

    let mut session = Session::new(db);

    // 2. Standard queries (§2.7): predicate logic over the closure.
    println!("== Who earns more than 20000? ==");
    let answer = session
        .query("Q(?who) := exists ?amt . (?who, EARNS, ?amt) & (?amt, >, 20000)")
        .expect("query");
    print!("{}", answer.render(session.db().store().interner()));

    // 3. Inference (§3): Sue is a manager, managers are employees, so Sue
    //    earns a salary; EMPLOYS facts exist by inversion.
    println!("\n== Who does SHIPPING employ? (inferred by inversion) ==");
    let answer = session.query("(SHIPPING, EMPLOYS, ?who)").expect("query");
    print!("{}", answer.render(session.db().store().interner()));

    // 4. Navigation (§4): explore without knowing the organization.
    println!("\n== Neighborhood of JOHN ==");
    let table = session.focus("JOHN").expect("focus");
    print!("{table}");

    // 5. Probing (§5): a failing query is automatically broadened.
    //    Nobody ADORES anything, but ADORES ≺ LIKES, so retraction finds
    //    the LIKES fact.
    println!("\n== Probing (JOHN, ADORES, ?x) ==");
    let report = session.probe("(JOHN, ADORES, ?x)").expect("probe");
    print!("{}", report.render_menu(session.db().store().interner()));

    // 6. Structured views (§6.1): the relation operator.
    println!("\n== relation(EMPLOYEE, earns salary) ==");
    session.db_mut().add(25000i64, "isa", "SALARY-AMOUNT");
    session.db_mut().add(18000i64, "isa", "SALARY-AMOUNT");
    session.db_mut().add(40000i64, "isa", "SALARY-AMOUNT");
    let table = session.relation("EMPLOYEE", &[("EARNS", "SALARY-AMOUNT")]).expect("relation");
    print!("{}", table.render(session.db().store().interner()));

    // 7. Integrity (§2.5): contradictions are rejected transactionally.
    session.db_mut().add("LOVES", "contra", "HATES");
    session.db_mut().add("JOHN", "LOVES", "FELIX");
    match session.db_mut().try_add("JOHN", "HATES", "FELIX") {
        Err(e) => println!("\n== Integrity == \nrejected as expected: {e}"),
        Ok(_) => unreachable!("contradiction must be rejected"),
    }
}
