//! A company database exercising the integrity machinery (§2.5, §3.5):
//! constraint rules, contradiction facts, transactional updates, and the
//! manager-salary constraint from the paper.
//!
//! Run with `cargo run --example company`.

use loosedb::datagen::{company, CompanyConfig};
use loosedb::{Session, TransactionError};

fn main() {
    // The generated world carries the paper's two §2.5 constraints:
    // ages are positive, and an employee never earns more than their
    // manager (with the membership guards the paper's own rule uses).
    let mut db =
        company(&CompanyConfig { employees: 20, departments: 4, with_constraints: true, seed: 11 });

    println!("== Validation against both §2.5 constraints ==");
    match db.validate() {
        Ok([]) => {
            println!("database is consistent ({} base facts)", db.base_len());
        }
        Ok(violations) => {
            let violations = violations.to_vec();
            println!("{} violations:", violations.len());
            for v in &violations {
                println!("  {}", db.display_violation(v));
            }
        }
        Err(e) => println!("closure failed: {e}"),
    }

    // Violate the salary constraint on purpose (unchecked add) and watch
    // validation catch it with attribution to the rule.
    println!("\n== Injecting an underpaid manager ==");
    db.add("EMP-19", "MANAGER-IS", "GREEDY-GUS");
    db.add("GREEDY-GUS", "EARNS", 1i64);
    db.add(1i64, "isa", "SALARY-AMOUNT");
    let violations = db.validate().expect("closure").to_vec();
    for v in &violations {
        println!("  {}", db.display_violation(v));
    }
    // Repair and re-validate.
    let gus = db.lookup_symbol("GREEDY-GUS").expect("gus");
    let earns = db.lookup_symbol("EARNS").expect("EARNS");
    let one = db.lookup(&1i64.into()).expect("1");
    db.remove(&loosedb::Fact::new(gus, earns, one));
    db.add("GREEDY-GUS", "EARNS", 90000i64);
    db.add(90000i64, "isa", "SALARY-AMOUNT");
    assert!(db.is_consistent().expect("closure"));
    println!("repaired: GREEDY-GUS now earns 90000; database consistent again");

    // Transactional updates reject violations atomically (§2.5).
    println!("\n== Transactional updates ==");
    match db.try_add(-40i64, "isa", "AGE") {
        Err(TransactionError::Integrity(v)) => {
            println!("try_add(-40, isa, AGE) rejected with {} violation(s)", v.len());
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    match db.try_add("EMP-1", "HATES", "EMP-2") {
        Ok(_) => println!("try_add(EMP-1, HATES, EMP-2) accepted (no LOVES fact yet)"),
        Err(e) => panic!("unexpected rejection: {e}"),
    }
    match db.try_add("EMP-1", "LOVES", "EMP-2") {
        Err(TransactionError::Integrity(_)) => {
            println!("try_add(EMP-1, LOVES, EMP-2) rejected: contradicts HATES (§3.5)")
        }
        other => panic!("expected rejection, got {other:?}"),
    }

    // Synonyms (§3.3) consolidate entities after the fact — the paper's
    // remedy for JOHNNY vs JOHN.
    println!("\n== Synonym consolidation ==");
    db.add("EMP-0", "syn", "THE-FOUNDER");
    let mut session = Session::new(db);
    let answer = session.query("(THE-FOUNDER, EARNS, ?x)").expect("query");
    println!("THE-FOUNDER's salary (via synonym inference):");
    print!("{}", answer.render(session.db().store().interner()));

    // Generalization chain (§3.1): WORKS-FOR ≺ IS-PAID-BY.
    println!("\n== Who is paid by DEPT-0? (inferred, never stored) ==");
    let answer = session
        .query("Q(?who) := (?who, IS-PAID-BY, DEPT-0) & (?who, isa, PERSON)")
        .expect("query");
    let n = answer.len();
    print!("{}", answer.render(session.db().store().interner()));
    println!("({n} employees; the IS-PAID-BY relationship was never asserted directly)");
}
