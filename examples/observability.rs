//! The observability layer end to end: metrics, snapshots, spans, and the
//! Prometheus text exporter.
//!
//! Run with `cargo run --example observability` for metrics only, or with
//! `--features obs` to also capture tracing spans:
//!
//! ```text
//! cargo run --example observability --features obs
//! ```

use std::sync::Arc;

use loosedb::{Database, SharedDatabase, SharedSession};

fn main() {
    // Span capture is a no-op unless the `obs` feature is compiled in;
    // metrics are always live.
    loosedb::obs::trace::set_capture(true);

    let mut db = Database::new();
    db.add("ADORES", "gen", "LIKES");
    db.add("JOHN", "isa", "EMPLOYEE");
    db.add("JOHN", "LIKES", "FELIX");
    db.add("JOHN", "EARNS", 25000i64);
    let shared = Arc::new(SharedDatabase::new(db).expect("consistent seed"));

    // A session browses: navigation, queries (twice — the repeat hits the
    // answer cache), and a probe whose retraction wave succeeds.
    let mut session = SharedSession::new(Arc::clone(&shared));
    session.focus("JOHN").expect("JOHN is interned");
    session.query("(JOHN, LIKES, ?x)").expect("query");
    session.query("(JOHN, LIKES, ?x)").expect("cached repeat");
    session.probe("(JOHN, ADORES, ?x)").expect("probe");

    // A writer publishes; the epoch gauge and publish counters move.
    shared.insert("MARY", "LIKES", "FELIX").expect("insert");

    // 1. The typed snapshot: exact counter values, histogram quantiles.
    let snap = shared.metrics_snapshot();
    println!("== metrics_snapshot() ==");
    println!("epoch                    {}", snap.publish.epoch);
    println!("publishes                {}", snap.publish.publishes);
    println!("closure computes/extends {}/{}", snap.closure.computes, snap.closure.extends);
    println!("query evals              {}", snap.query.evals);
    println!(
        "query cache hit/miss     {}/{}",
        snap.browse.query_cache.hits, snap.browse.query_cache.misses
    );
    println!("navigation builds        {}", snap.browse.nav_builds);
    println!("probe runs/waves         {}/{}", snap.browse.probe_runs, snap.browse.probe_waves);
    println!("probe wave size p50      {}", snap.browse.probe_wave_size.p50);
    println!("eval latency p99 (ns) ≤  {}", snap.query.eval_ns.p99);

    // 2. Captured spans (empty without `--features obs`).
    let spans = loosedb::obs::trace::drain();
    println!("\n== captured spans ({}) ==", spans.len());
    for s in &spans {
        println!("{}", loosedb::obs::trace::render_span(s));
    }
    if spans.is_empty() {
        println!("(rebuild with --features obs to capture spans)");
    }

    // 3. The Prometheus text exposition — what a scraper would read.
    println!("\n== prometheus_text() ==");
    print!("{}", loosedb::obs::prometheus_text(shared.metrics().registry()));
}
