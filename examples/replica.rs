//! WAL-shipped read replica quickstart: a leader journal, a follower
//! that bootstraps from its checkpoint and tails its WAL, snapshot-
//! isolated reads (with inference) on the follower, and failover by
//! promotion.
//!
//! Run with `cargo run --example replica`. Everything happens in a
//! temporary directory that is removed at the end.

use loosedb::{DurableDatabase, Replica, SharedSession, SyncPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("loosedb-replica-{}", std::process::id()));
    let leader_dir = root.join("leader");
    let replica_dir = root.join("replica");

    // 1. A leader: a durable journal with a few facts and one
    //    checkpoint — the checkpoint publishes the snapshot replicas
    //    bootstrap from (and starts WAL segment 1, which they tail).
    let mut leader = DurableDatabase::open(&leader_dir, SyncPolicy::Always)?;
    leader.set_retain_wals(1); // keep one retired WAL for lagging followers
    leader.add("JOHN", "isa", "EMPLOYEE")?;
    leader.add("EMPLOYEE", "EARNS", "SALARY")?;
    leader.checkpoint()?;
    leader.add("MARY", "isa", "EMPLOYEE")?;

    // 2. A follower bootstraps from the checkpoint, replays the shipped
    //    frames, and records a crash-safe cursor of its own.
    let mut replica = Replica::open(&leader_dir, &replica_dir)?;
    let applied = replica.catch_up()?;
    println!(
        "follower caught up: {applied} op(s) applied, epoch {}, segment {}",
        replica.cursor().epoch,
        replica.cursor().segment,
    );

    // 3. Snapshot-isolated reads, inference included: MARY was shipped
    //    over the wire, and she earns a salary by membership inference
    //    on the *follower's* closure.
    let mut session = SharedSession::new(replica.shared().clone());
    let answer = session.query("(?who, EARNS, SALARY)")?;
    println!("who earns a salary: {} answer(s)", answer.len()); // EMPLOYEE, JOHN, MARY

    // 4. The leader keeps writing; each poll ships and publishes the
    //    new frames without disturbing open reader snapshots.
    leader.add("JOHN", "FAVORITE-MUSIC", "PC#9-WAM")?;
    let report = replica.poll()?;
    println!("polled: {} op(s) applied, lag {} byte(s)", report.ops_applied, report.lag_bytes);

    // 5. Failover: the leader is gone. Promotion converts the replica's
    //    replayed state into a fresh writable journal, one generation
    //    past everything it consumed.
    drop(leader);
    drop(session); // release the shared handle so promote can take it whole
    let mut writer = replica.promote(root.join("promoted"), SyncPolicy::Always)?;
    writer.add("MARY", "FAVORITE-MUSIC", "PC#9-WAM")?;
    println!("promoted to writer at generation {}", writer.generation());

    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
