//! The paper's worked examples, reproduced end to end:
//!
//! * §4.1 — the navigation session `(JOHN,*,*)` → `(PC#9-WAM,*,*)` →
//!   `(LEOPOLD,*,MOZART)`;
//! * §5.2 — the probing menu for "the free things that all students love";
//! * §6.1 — the `relation(employee, works-for department, earns salary)`
//!   table.
//!
//! Run with `cargo run --example paper_walkthrough`.

use loosedb::datagen::{music_world, probing_world, relation_world, PROBING_QUERY};
use loosedb::{navigate, probe_text, relation, FactView, NavigateOptions, Pattern, ProbeOptions};

fn main() {
    section_4_1();
    section_5_2();
    section_6_1();
}

/// §4.1: browsing by navigation.
fn section_4_1() {
    println!("================ §4.1 Navigation ================\n");
    let mut db = music_world();
    let opts = NavigateOptions::default();

    // First template: (JOHN, *, *).
    let john = db.lookup_symbol("JOHN").expect("JOHN");
    let view = db.view().expect("closure");
    let table = navigate(&view, Pattern::from_source(john), &opts).expect("navigate");
    println!("{table}");
    drop(view);

    // The user picks PC#9-WAM from the FAVORITE-MUSIC column.
    let pc9 = db.lookup_symbol("PC#9-WAM").expect("PC#9-WAM");
    let view = db.view().expect("closure");
    let table = navigate(&view, Pattern::from_source(pc9), &opts).expect("navigate");
    println!("{table}");
    drop(view);

    // Finally (LEOPOLD, *, MOZART): every association between the two,
    // including the composed FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY path —
    // "the power of composition as a browsing tool".
    let leopold = db.lookup_symbol("LEOPOLD").expect("LEOPOLD");
    let mozart = db.lookup_symbol("MOZART").expect("MOZART");
    let view = db.view().expect("closure");
    let table =
        navigate(&view, Pattern::new(Some(leopold), None, Some(mozart)), &opts).expect("navigate");
    println!("{table}");
}

/// §5.2: browsing by probing.
fn section_5_2() {
    println!("================ §5.2 Probing ================\n");
    let mut db = probing_world();
    println!("query: {PROBING_QUERY}\n");
    let report = probe_text(PROBING_QUERY, &mut db, &ProbeOptions::default()).expect("probe");
    println!("{}", report.render_menu(db.store().interner()));
    // Show what each successful broadening actually returns.
    if let loosedb::ProbeOutcome::RetractionsSucceeded { wave } = &report.outcome {
        for attempt in report.waves[*wave].attempts.iter().filter(|a| a.succeeded()) {
            let answer = attempt.answer.as_ref().expect("succeeded");
            let descr: Vec<String> =
                attempt.steps.iter().map(|s| s.describe(db.store().interner())).collect();
            println!("--- {} ---", descr.join(" and "));
            print!("{}", answer.render(db.store().interner()));
        }
    }
}

/// §6.1: the relation operator.
fn section_6_1() {
    println!("\n================ §6.1 relation(...) ================\n");
    let mut db = relation_world();
    let employee = db.lookup_symbol("EMPLOYEE").expect("EMPLOYEE");
    let works_for = db.lookup_symbol("WORKS-FOR").expect("WORKS-FOR");
    let department = db.lookup_symbol("DEPARTMENT").expect("DEPARTMENT");
    let earns = db.lookup_symbol("EARNS").expect("EARNS");
    let salary = db.lookup_symbol("SALARY").expect("SALARY");
    let view = db.view().expect("closure");
    let table =
        relation(&view, employee, &[(works_for, department), (earns, salary)]).expect("relation");
    print!("{}", table.render(view.interner()));
}
