//! A university database with reified enrollments (§2.6): complex
//! relationships broken into atomic facts, structured views over the heap
//! of facts, and probing for data the database does not have.
//!
//! Run with `cargo run --example university`.

use loosedb::datagen::{university, UniversityConfig};
use loosedb::Session;

fn main() {
    let db = university(&UniversityConfig {
        students: 12,
        courses: 5,
        instructors: 3,
        enrollments_per_student: 2,
        seed: 7,
    });
    let mut session = Session::new(db);

    // Complex facts were reified (§2.6): "Tom is enrolled in CS100 and
    // received the grade A" became three atomic facts through an E<i>
    // entity. Reassemble them with a conjunctive query.
    println!("== Enrollments (reassembled from reified facts) ==");
    let answer = session
        .query(
            "Q(?s, ?c, ?g) := exists ?e . (?e, ENROLL-STUDENT, ?s) \
             & (?e, ENROLL-COURSE, ?c) & (?e, ENROLL-GRADE, ?g) \
             & (?s, isa, STUDENT) & (?c, isa, COURSE) & (?g, isa, GRADE)",
        )
        .expect("query");
    print!("{}", answer.render(session.db().store().interner()));

    // Inversion (§3.4): TAUGHT-BY facts exist without being stored.
    println!("\n== Who teaches CRS-0? (via TAUGHT-BY, inferred) ==");
    let answer = session.query("(CRS-0, TAUGHT-BY, ?who)").expect("query");
    print!("{}", answer.render(session.db().store().interner()));

    // The relation operator (§6.1): a structured view over the heap.
    println!("\n== relation(ENROLLMENT, enroll-student student, enroll-grade grade) ==");
    let table = session
        .relation("ENROLLMENT", &[("ENROLL-STUDENT", "STUDENT"), ("ENROLL-GRADE", "GRADE")])
        .expect("relation");
    let rendered = table.render(session.db().store().interner());
    for line in rendered.lines().take(8) {
        println!("{line}");
    }
    println!("… ({} rows total)", table.rows.len());

    // Navigation: examine a student picked from the answer above.
    println!("\n== Neighborhood of STU-0 ==");
    let table = session.focus("STU-0").expect("focus");
    print!("{table}");

    // Probing (§5): "quarterbacks who graduated from USC" — the paper's
    // own failing query. GRADUATE-OF ≺ ATTENDED holds in this world; no
    // student is a QUARTERBACK, so the probe diagnoses the missing entity.
    println!("\n== Probing the paper's §5 query ==");
    let report =
        session.probe("Q(?x) := (?x, isa, QUARTERBACK) & (?x, GRADUATE-OF, USC)").expect("probe");
    print!("{}", report.render_menu(session.db().store().interner()));

    // A query that fails only because GRADUATE-OF is too strong broadens
    // to ATTENDED... here everyone who graduated also attended, so probe
    // a student who merely attended:
    session.db_mut().add("STU-0", "ATTENDED", "UCLA");
    println!("\n== Probing (STU-0, GRADUATE-OF, UCLA) ==");
    let report = session.probe("(STU-0, GRADUATE-OF, UCLA)").expect("probe");
    print!("{}", report.render_menu(session.db().store().interner()));

    // Explanation: why does the closure say STU-0 is a PERSON?
    println!("\n== Why is STU-0 a PERSON? ==");
    let stu0 = session.db().lookup_symbol("STU-0").expect("STU-0");
    let person = session.db().lookup_symbol("PERSON").expect("PERSON");
    let isa = loosedb::special::ISA;
    let fact = loosedb::Fact::new(stu0, isa, person);
    if let Some(lines) = session.db_mut().explain(&fact).expect("closure") {
        for line in lines {
            println!("{line}");
        }
    }

    // Statistics: base facts vs closure.
    let base = session.db().base_len();
    let closure_len = {
        let view = session.db_mut().view().expect("closure");
        view.closure().len()
    };
    println!("\n{base} base facts, {closure_len} facts in the closure");
}
