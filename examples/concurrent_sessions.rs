//! Concurrent browsing: several sessions on distinct threads sharing one
//! `SharedDatabase`, with reads proceeding while a writer publishes.
//!
//! Each session holds an `Arc<SharedDatabase>` and snapshots an immutable
//! closure generation per operation — no reader ever blocks on a write,
//! and no write ever waits for readers to finish. The demo also shows the
//! generation-keyed query cache: repeats hit the cache until a write
//! publishes a new epoch.
//!
//! Run with `cargo run --example concurrent_sessions`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use loosedb::{Database, SharedDatabase, SharedSession};

fn main() {
    // The §2 world: employees, music, a taxonomy — built single-threaded,
    // then handed to the concurrent serving layer.
    let mut db = Database::new();
    db.add("JOHN", "isa", "EMPLOYEE");
    db.add("MARY", "isa", "EMPLOYEE");
    db.add("EMPLOYEE", "EARNS", "SALARY");
    db.add("JOHN", "FAVORITE-MUSIC", "PC#9-WAM");
    db.add("PC#9-WAM", "COMPOSED-BY", "MOZART");
    db.add("MARY", "LIKES", "FELIX");
    let shared = Arc::new(SharedDatabase::new(db).expect("initial closure"));
    println!("published generation {} to all sessions\n", shared.epoch());

    let stop = Arc::new(AtomicBool::new(false));
    let mut browsers = Vec::new();
    for (who, focus) in [("alice", "JOHN"), ("bob", "MARY"), ("carol", "MOZART")] {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&stop);
        browsers.push(thread::spawn(move || {
            // Each thread runs its own independent session: private focus
            // history, private definitions, private query cache.
            let mut session = SharedSession::new(shared);
            let mut tables = 0usize;
            let mut answers = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let table = session.focus(focus).expect("navigate");
                tables += 1;
                let employees = session.query("(?who, EARNS, SALARY)").expect("query");
                answers += employees.len();
                if tables == 1 {
                    println!("[{who}] first look at {focus}:\n{table}");
                }
            }
            let stats = session.cache_stats();
            println!(
                "[{who}] rendered {tables} tables, saw {answers} answer rows, \
                 cache {} hits / {} misses (final epoch {})",
                stats.hits,
                stats.misses,
                session.epoch(),
            );
        }));
    }

    // The writer publishes while the browsers above keep reading: every
    // insert lands as a fresh generation; in-flight reads keep their
    // snapshot, the next operation sees the new epoch.
    for i in 0..20 {
        shared.insert(format!("CONTRACTOR-{i}"), "isa", "EMPLOYEE").expect("insert");
        thread::yield_now();
    }
    println!("\nwriter finished at epoch {}\n", shared.epoch());
    stop.store(true, Ordering::Relaxed);
    for b in browsers {
        b.join().expect("browser thread");
    }

    // The final generation reflects every write, including inferred facts:
    // each contractor EARNS SALARY by membership inference.
    let mut session = SharedSession::new(Arc::clone(&shared));
    let all = session.query("(?who, EARNS, SALARY)").expect("query");
    println!("final generation: {} entities earn a salary", all.len());
}
