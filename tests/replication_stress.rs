//! Replication stress: one leader and two followers racing in real
//! threads over a shared in-memory filesystem, with a kill-loop.
//!
//! The leader drives a few thousand inserts/removals with periodic
//! checkpoints (retaining one WAL, so segment retirement genuinely
//! races the followers). Each follower runs a loop of short-lived
//! incarnations behind [`FaultIo`] with a pseudo-random fault budget:
//! an incarnation opens, tails for a while, and dies at an injected
//! I/O fault mid-commit (or is dropped while healthy) — then the next
//! incarnation reopens from whatever local state the last one left.
//!
//! When the leader finishes, the filesystem is crashed (unsynced bytes
//! vanish; the leader is always-synced so only follower-local tails can
//! be torn), both followers are reopened through clean handles, and the
//! suite asserts both converge to exactly the leader's final state.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use loosedb::{DurableDatabase, EntityValue, Fact, FactStore, Replica, ReplicaOptions, SyncPolicy};
use loosedb_store::io::{FaultIo, MemIo};

const TOTAL_OPS: usize = 1500;
const CHECKPOINT_EVERY: usize = 400;

#[derive(Clone)]
enum Op {
    Insert(EntityValue, EntityValue, EntityValue),
    Remove(EntityValue, EntityValue, EntityValue),
}

fn lcg(state: &mut u64) -> u32 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (*state >> 33) as u32
}

fn workload(seed: u64) -> Vec<Op> {
    let mut rng = seed;
    let mut inserted: Vec<(EntityValue, EntityValue, EntityValue)> = Vec::new();
    let mut ops = Vec::with_capacity(TOTAL_OPS);
    for i in 0..TOTAL_OPS {
        let roll = lcg(&mut rng);
        if i % 4 == 3 && !inserted.is_empty() {
            let (s, r, t) = inserted[(roll as usize) % inserted.len()].clone();
            ops.push(Op::Remove(s, r, t));
        } else {
            let s = EntityValue::symbol(format!("E{}", lcg(&mut rng) % 64));
            let r = EntityValue::symbol(format!("R{}", lcg(&mut rng) % 8));
            let t = match lcg(&mut rng) % 2 {
                0 => EntityValue::symbol(format!("T{}", lcg(&mut rng) % 24)),
                _ => EntityValue::Int((lcg(&mut rng) % 100) as i64),
            };
            inserted.push((s.clone(), r.clone(), t.clone()));
            ops.push(Op::Insert(s, r, t));
        }
    }
    ops
}

fn rendered(store: &FactStore) -> BTreeSet<String> {
    store
        .iter()
        .map(|f| format!("{} {} {}", store.value(f.s), store.value(f.r), store.value(f.t)))
        .collect()
}

fn opts() -> ReplicaOptions {
    ReplicaOptions { batch_ops: 16, max_retries: 2, retry_backoff: Duration::from_micros(50) }
}

/// One follower's kill-loop: fault-injected incarnations, each of
/// which tails until it dies at an injected I/O fault or reaches the
/// live head (and is then dropped while healthy — itself a kill: the
/// next incarnation must resume from the mirror and cursor it left).
/// The loop runs until the follower has fully caught up *after* the
/// leader finished; the fault budgets are far smaller than the total
/// replication work, so multiple incarnations and multiple injected
/// deaths are guaranteed, not probabilistic.
fn follower_kill_loop(
    mem: Arc<MemIo>,
    local_dir: String,
    done: Arc<AtomicBool>,
    seed: u64,
) -> (usize, usize) {
    let mut rng = seed;
    let mut incarnations = 0usize;
    let mut faulted = 0usize;
    loop {
        incarnations += 1;
        assert!(incarnations < 10_000, "kill-loop in {local_dir} is not making progress");
        let budget = 4 + (lcg(&mut rng) % 24) as usize;
        let io = FaultIo::new(Arc::clone(&mem), budget);
        let Ok(mut replica) = Replica::open_with(io, "/leader", &local_dir, opts()) else {
            faulted += 1;
            continue;
        };
        loop {
            match replica.poll() {
                Ok(report) if report.caught_up => {
                    if done.load(Ordering::Acquire) {
                        return (incarnations, faulted);
                    }
                    std::thread::yield_now();
                    break;
                }
                Ok(_) => {}
                Err(_) => {
                    faulted += 1;
                    break;
                }
            }
        }
    }
}

fn leader_apply(leader: &mut DurableDatabase<Arc<MemIo>>, i: usize, op: &Op) {
    match op {
        Op::Insert(s, r, t) => {
            leader.add(s.clone(), r.clone(), t.clone()).unwrap();
        }
        Op::Remove(s, r, t) => {
            let inner = leader.database();
            let f = Fact::new(
                inner.entity(s.clone()),
                inner.entity(r.clone()),
                inner.entity(t.clone()),
            );
            leader.remove(&f).unwrap();
        }
    }
    if (i + 1).is_multiple_of(CHECKPOINT_EVERY) {
        leader.checkpoint().unwrap();
    }
}

#[test]
fn two_followers_survive_kill_loop_and_converge_after_crash() {
    let mem = Arc::new(MemIo::new());
    let done = Arc::new(AtomicBool::new(false));
    let ops = workload(0xA076_1D64_78BD_642F);

    // Preload half the workload before the followers start, landing
    // *between* checkpoints: bootstrapping then costs a snapshot decode
    // plus a WAL replay far larger than any single fault budget, so the
    // first incarnations are guaranteed to die at injected faults and
    // the kill-loop assertions below are arithmetic, not racy. (Later
    // incarnations may leapfrog via re-bootstrap when a leader
    // checkpoint retires their segment — that path is part of the
    // stress — but the ops past the final checkpoint can only ever be
    // replayed frame by frame.)
    let preload = 700;
    let mut leader =
        DurableDatabase::open_with(Arc::clone(&mem), "/leader", SyncPolicy::Always).unwrap();
    leader.set_retain_wals(1);
    for (i, op) in ops[..preload].iter().enumerate() {
        leader_apply(&mut leader, i, op);
    }

    let followers: Vec<_> = (0..2)
        .map(|i| {
            let mem = Arc::clone(&mem);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                follower_kill_loop(mem, format!("/replica-{i}"), done, 0x9E37_79B9 + i as u64)
            })
        })
        .collect();

    for (i, op) in ops[preload..].iter().enumerate() {
        leader_apply(&mut leader, preload + i, op);
    }
    let final_state = rendered(leader.database().store());
    done.store(true, Ordering::Release);

    let mut total_incarnations = 0usize;
    let mut total_faulted = 0usize;
    for handle in followers {
        let (incarnations, faulted) = handle.join().unwrap();
        total_incarnations += incarnations;
        total_faulted += faulted;
    }
    // The loop must actually have churned through incarnations, and
    // some of them must have died to an injected fault — without that,
    // "survives the kill-loop" tests nothing. Each follower needs at
    // least three incarnations (its budget cannot cover even the
    // post-final-checkpoint replay) and at least one injected death.
    assert!(total_incarnations >= 6, "only {total_incarnations} incarnations");
    assert!(total_faulted >= 2, "only {total_faulted} incarnations hit an injected fault");

    // Power loss after the leader is done (everything leader-side is
    // synced; only follower-local tails can be torn), then both
    // followers reopen through clean handles and must converge.
    mem.crash();
    for i in 0..2 {
        let mut replica =
            Replica::open_with(Arc::clone(&mem), "/leader", format!("/replica-{i}"), opts())
                .unwrap_or_else(|e| panic!("follower {i} failed to reopen after crash: {e}"));
        replica.catch_up().unwrap_or_else(|e| panic!("follower {i} failed to catch up: {e}"));
        assert_eq!(
            rendered(replica.shared().snapshot().store()),
            final_state,
            "follower {i} did not converge to the leader's final state"
        );
        assert_eq!(replica.poll().unwrap().lag_bytes, 0);
    }
}
