//! Property-based tests of the core invariants, across crates.
//!
//! The star of the show is the paper's **broadness** property (§5.1): "if
//! a query succeeds, all broader queries will succeed too" — in fact every
//! broader query's answer *contains* the original's. Probing is only
//! sound if the closure engine, the taxonomy analysis, the retraction
//! generator and the evaluator all agree; this test exercises them
//! together on random databases.

use std::collections::BTreeSet;

use proptest::prelude::*;

use loosedb::engine::{
    closure, InferenceConfig, KindRegistry, RuleSet, Strategy as ClosureStrategy, Taxonomy,
};
use loosedb::query::{eval_with, AtomOrdering, EvalOptions, ExecStrategy, ParallelMode};
use loosedb::{Database, EntityId, Fact, FactStore, FactView, Pattern};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A compact description of a random database: node entities N0..N9,
/// relationship entities R0..R4, plus generalization edges that form a DAG
/// (edges only go from lower to higher index, so no accidental synonyms).
#[derive(Clone, Debug)]
struct DbSpec {
    facts: Vec<(u8, u8, u8)>,
    node_gen_edges: Vec<(u8, u8)>,
    rel_gen_edges: Vec<(u8, u8)>,
}

fn db_spec() -> impl Strategy<Value = DbSpec> {
    (
        prop::collection::vec((0u8..10, 0u8..5, 0u8..10), 0..25),
        prop::collection::vec((0u8..9, 0u8..10), 0..8),
        prop::collection::vec((0u8..4, 0u8..5), 0..4),
    )
        .prop_map(|(facts, raw_node_edges, raw_rel_edges)| DbSpec {
            facts,
            node_gen_edges: raw_node_edges.into_iter().filter(|(a, b)| a < b).collect(),
            rel_gen_edges: raw_rel_edges.into_iter().filter(|(a, b)| a < b).collect(),
        })
}

fn build_db(spec: &DbSpec) -> Database {
    let mut db = Database::new();
    for &(s, r, t) in &spec.facts {
        db.add(format!("N{s}"), format!("R{r}"), format!("N{t}"));
    }
    for &(a, b) in &spec.node_gen_edges {
        db.add(format!("N{a}"), "gen", format!("N{b}"));
    }
    for &(a, b) in &spec.rel_gen_edges {
        db.add(format!("R{a}"), "gen", format!("R{b}"));
    }
    db
}

// ---------------------------------------------------------------------
// Store invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Indexed pattern matching agrees with the scan baseline for every
    /// pattern shape.
    #[test]
    fn index_matches_scan(
        facts in prop::collection::vec((0u32..20, 0u32..6, 0u32..20), 0..60),
        probe in (0u32..20, 0u32..6, 0u32..20),
        shape in 0u8..8,
    ) {
        let mut store = FactStore::new();
        let mut node = |i: u32| -> EntityId { store.entity(format!("E{i}")) };
        let interned: Vec<Fact> = facts
            .iter()
            .map(|&(s, r, t)| Fact::new(node(s), node(r + 100), node(t)))
            .collect();
        for f in &interned {
            store.insert(*f);
        }
        let s = store.entity(format!("E{}", probe.0));
        let r = store.entity(format!("E{}", probe.1 + 100));
        let t = store.entity(format!("E{}", probe.2));
        let pattern = Pattern::new(
            (shape & 1 != 0).then_some(s),
            (shape & 2 != 0).then_some(r),
            (shape & 4 != 0).then_some(t),
        );
        let via_index: BTreeSet<Fact> = store.matching(pattern).collect();
        let via_scan: BTreeSet<Fact> = store.matching_scan(pattern).collect();
        prop_assert_eq!(via_index, via_scan);
    }

    /// Snapshot encode/decode is the identity on stores.
    #[test]
    fn snapshot_roundtrip(
        facts in prop::collection::vec((0u32..15, 0u32..5, 0u32..15), 0..40),
        numbers in prop::collection::vec(-1000i64..1000, 0..10),
    ) {
        let mut store = FactStore::new();
        for (i, &(s, r, t)) in facts.iter().enumerate() {
            if let Some(&n) = numbers.get(i % numbers.len().max(1)) {
                store.add(format!("E{s}"), format!("R{r}"), n);
            }
            store.add(format!("E{s}"), format!("R{r}"), format!("E{t}"));
        }
        let restored = loosedb::store::snapshot::decode(
            loosedb::store::snapshot::encode(&store),
        ).expect("decode");
        prop_assert_eq!(store.len(), restored.len());
        let a: Vec<String> = store.iter().map(|f| store.display_fact(&f)).collect();
        let b: Vec<String> = restored.iter().map(|f| restored.display_fact(&f)).collect();
        prop_assert_eq!(a, b);
    }

    /// Replaying a log of inserts/removes reproduces direct application.
    #[test]
    fn log_replay_equivalence(
        ops in prop::collection::vec((any::<bool>(), 0u32..8, 0u32..3, 0u32..8), 0..40),
    ) {
        let mut direct = FactStore::new();
        let mut log = loosedb::FactLog::new();
        for &(insert, s, r, t) in &ops {
            let (s, r, t) =
                (format!("E{s}"), format!("R{r}"), format!("E{t}"));
            if insert {
                direct.add(s.as_str(), r.as_str(), t.as_str());
                log.insert(s.as_str(), r.as_str(), t.as_str());
            } else {
                let fact = Fact::new(
                    direct.entity(s.as_str()),
                    direct.entity(r.as_str()),
                    direct.entity(t.as_str()),
                );
                direct.remove(&fact);
                log.remove(s.as_str(), r.as_str(), t.as_str());
            }
        }
        let mut replayed = FactStore::new();
        loosedb::store::log::replay(log.bytes(), &mut replayed).expect("replay");
        let a: BTreeSet<String> = direct.iter().map(|f| direct.display_fact(&f)).collect();
        let b: BTreeSet<String> =
            replayed.iter().map(|f| replayed.display_fact(&f)).collect();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------
// Closure invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The closure contains the base facts (monotonicity) and computing
    /// the closure of a closure adds nothing (idempotence).
    #[test]
    fn closure_monotone_and_idempotent(spec in db_spec()) {
        let mut db = build_db(&spec);
        let base: BTreeSet<Fact> = db.store().iter().collect();
        let first: BTreeSet<Fact> = db.closure().expect("closure").iter().collect();
        prop_assert!(first.is_superset(&base));

        let mut second_db = Database::new();
        // Reinsert closure facts as base facts via raw ids — the interner
        // must be shared, so rebuild by display strings instead.
        for f in &first {
            let s = db.display(f.s);
            let r = db.display(f.r);
            let t = db.display(f.t);
            second_db.add(s.as_str(), r.as_str(), t.as_str());
        }
        let second: usize = second_db.closure().expect("closure").stats().derived_facts;
        prop_assert_eq!(second, 0, "closure of a closure derived new facts");
    }

    /// Naive and semi-naive strategies produce identical closures.
    #[test]
    fn naive_equals_seminaive(spec in db_spec()) {
        let run = |strategy: ClosureStrategy, spec: &DbSpec| -> BTreeSet<String> {
            let db = build_db(spec);
            let mut store = db.store().clone();
            let c = closure::compute(
                &mut store,
                &KindRegistry::new(),
                &RuleSet::new(),
                &InferenceConfig::default(),
                strategy,
            ).expect("closure");
            c.iter().map(|f| store.display_fact(&f)).collect()
        };
        prop_assert_eq!(run(ClosureStrategy::SemiNaive, &spec), run(ClosureStrategy::Naive, &spec));
    }

    /// The parallel structural-rule path equals the sequential path.
    #[test]
    fn parallel_equals_sequential(spec in db_spec()) {
        let run = |threshold: usize, spec: &DbSpec| -> BTreeSet<String> {
            let db = build_db(spec);
            let mut store = db.store().clone();
            let config = InferenceConfig { parallel_threshold: threshold, ..Default::default() };
            let c = closure::compute(
                &mut store,
                &KindRegistry::new(),
                &RuleSet::new(),
                &config,
                ClosureStrategy::SemiNaive,
            ).expect("closure");
            c.iter().map(|f| store.display_fact(&f)).collect()
        };
        prop_assert_eq!(run(1, &spec), run(usize::MAX, &spec));
    }
}

// ---------------------------------------------------------------------
// Query evaluation invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Greedy (planned) and syntactic conjunct orders agree.
    #[test]
    fn greedy_equals_syntactic(
        spec in db_spec(),
        qs in 0u8..10, qr in 0u8..5, qt in 0u8..10,
    ) {
        let mut db = build_db(&spec);
        let src = format!(
            "Q(?x, ?y) := (?x, R{qr}, ?y) & (N{qs}, R{qr}, ?x) & (?y, gen, N{qt})"
        );
        let q = loosedb::parse(&src, db.store_interner_mut()).expect("parse");
        let view = db.view().expect("closure");
        let greedy = eval_with(&q, &view, EvalOptions {
            ordering: AtomOrdering::Greedy, max_rows: 100_000, ..EvalOptions::default()
        }).expect("greedy");
        let syntactic = eval_with(&q, &view, EvalOptions {
            ordering: AtomOrdering::Syntactic, max_rows: 100_000, ..EvalOptions::default()
        }).expect("syntactic");
        prop_assert_eq!(greedy.rows, syntactic.rows);
    }

    /// Partitioned and sequential hash joins agree on worlds whose join
    /// keys deliberately straddle partition boundaries: hub structure
    /// makes many probe rows share few distinct keys (heavy per-partition
    /// dedup) while the random facts spread other keys across every
    /// partition, for any partition count — including counts that do not
    /// divide the key space evenly.
    #[test]
    fn partitioned_join_equals_sequential(
        spec in db_spec(),
        hub_fanout in 1u8..8,
        nparts in 2usize..6,
    ) {
        let mut db = build_db(&spec);
        for i in 0..10u8 {
            db.add(format!("N{i}"), "R0", format!("N{}", i % hub_fanout));
            db.add(format!("N{}", i % hub_fanout), "R1", "HUB");
        }
        let src = "Q(?a, ?c) := exists ?b . (?a, R0, ?b) & (?b, R1, ?c)";
        let q = loosedb::parse(src, db.store_interner_mut()).expect("parse");
        let view = db.view().expect("closure");
        let base = EvalOptions {
            strategy: ExecStrategy::HashJoin, max_rows: 100_000, ..EvalOptions::default()
        };
        let seq = eval_with(&q, &view, EvalOptions {
            parallel: ParallelMode::Off, ..base
        }).expect("sequential");
        let par = eval_with(&q, &view, EvalOptions {
            parallel: ParallelMode::Force(nparts), ..base
        }).expect("partitioned");
        prop_assert_eq!(seq.rows, par.rows);
    }
}

// ---------------------------------------------------------------------
// The broadness property (§5.1)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every query in the retraction set is genuinely *broader*: its
    /// answer contains the original's (projected to common columns).
    #[test]
    fn retractions_are_broader(
        spec in db_spec(),
        a_s in 0u8..10, a_r in 0u8..5,
        b_r in 0u8..5, b_t in 0u8..10,
    ) {
        let mut db = build_db(&spec);
        // Two-atom conjunctive query sharing ?z — the §5.2 shape:
        // (Na, Ra, ?z) & (?z, Rb, Nb).
        let src = format!("Q(?z) := (N{a_s}, R{a_r}, ?z) & (?z, R{b_r}, N{b_t})");
        let query = loosedb::parse(&src, db.store_interner_mut()).expect("parse");
        let view = db.view().expect("closure");
        let opts = EvalOptions { ordering: AtomOrdering::Greedy, max_rows: 100_000, ..EvalOptions::default() };
        let original = eval_with(&query, &view, opts).expect("eval original");

        let taxonomy = Taxonomy::new(view.closure());
        let mut missing = BTreeSet::new();
        for (broader, step) in
            loosedb::browse::retraction_set(&query, &taxonomy, &mut missing)
        {
            let broad_answer = eval_with(&broader, &view, opts).expect("eval broader");
            // Compare on the columns the broadened query still has.
            for row in &original.rows {
                let projected: Vec<EntityId> = broader
                    .free
                    .iter()
                    .map(|v| {
                        let i = original
                            .columns
                            .iter()
                            .position(|c| c == v)
                            .expect("retraction never adds free variables");
                        row[i]
                    })
                    .collect();
                prop_assert!(
                    broad_answer.rows.iter().any(|br| {
                        broader.free.iter().enumerate().all(|(i, _)| br[i] == projected[i])
                    }),
                    "retraction {:?} lost answer {:?} of {:?}",
                    step,
                    projected,
                    src,
                );
            }
        }
    }

    /// §5.1 verbatim: "if a query succeeds, all broader queries will
    /// succeed too" — through whole retraction *waves*.
    #[test]
    fn success_propagates_upward(
        spec in db_spec(),
        a_s in 0u8..10, a_r in 0u8..5, a_t in 0u8..10,
    ) {
        let mut db = build_db(&spec);
        let src = format!("(N{a_s}, R{a_r}, N{a_t})");
        let query = loosedb::parse(&src, db.store_interner_mut()).expect("parse");
        let view = db.view().expect("closure");
        let opts = EvalOptions { ordering: AtomOrdering::Greedy, max_rows: 100_000, ..EvalOptions::default() };
        let original = eval_with(&query, &view, opts).expect("eval");
        if !original.succeeded() {
            return Ok(()); // nothing to propagate
        }
        let taxonomy = Taxonomy::new(view.closure());
        let mut missing = BTreeSet::new();
        // Two waves up the lattice: every query must succeed.
        let mut frontier = vec![query];
        for _ in 0..2 {
            let mut next = Vec::new();
            for q in &frontier {
                for (broader, step) in
                    loosedb::browse::retraction_set(q, &taxonomy, &mut missing)
                {
                    let ans = eval_with(&broader, &view, opts).expect("eval");
                    prop_assert!(
                        ans.succeeded(),
                        "broader query {:?} (step {:?}) failed although {} succeeded",
                        broader.render(view.interner()),
                        step,
                        src,
                    );
                    next.push(broader);
                }
            }
            frontier = next;
        }
    }
}

// ---------------------------------------------------------------------
// Goal-directed proving (the E14 ablation's correctness basis)
// ---------------------------------------------------------------------

/// Replay one prover-vs-closure scenario and collect every triple the two
/// disagree on. Shared by the property below and by the explicit
/// regression tests promoted from `tests/properties.proptest-regressions`
/// (the seed-corpus policy is documented in DESIGN.md).
fn prover_closure_disagreements(
    spec: &DbSpec,
    isa_edges: &[(u8, u8)],
    syn_pairs: &[(u8, u8)],
    inv_pairs: &[(u8, u8)],
) -> Vec<String> {
    let mut db = build_db(spec);
    for &(a, b) in isa_edges {
        db.add(format!("N{a}"), "isa", format!("N{b}"));
    }
    for &(a, b) in syn_pairs {
        if a != b {
            db.add(format!("N{a}"), "syn", format!("N{b}"));
        }
    }
    for &(a, b) in inv_pairs {
        db.add(format!("R{a}"), "inv", format!("R{b}"));
    }
    let config = InferenceConfig { user_rules: false, ..Default::default() };
    *db.config_mut() = config.clone();

    let store = db.store().clone();
    let kinds = KindRegistry::new();
    let closure = closure::compute(
        &mut store.clone(),
        &kinds,
        &RuleSet::new(),
        &config,
        ClosureStrategy::SemiNaive,
    )
    .expect("closure");
    let view = loosedb::engine::ClosureView::new(&closure, store.interner(), &kinds);
    let prover = loosedb::engine::Prover::new(&store, &kinds, &config);

    let domain: Vec<EntityId> = view.domain().to_vec();
    let mut disagreements = Vec::new();
    for &s in &domain {
        for &r in &domain {
            for &t in &domain {
                let goal = Fact::new(s, r, t);
                let forward = view.holds(&goal);
                let backward = prover.prove(&goal);
                if forward != backward {
                    disagreements.push(format!(
                        "prover disagrees on {} (forward {forward}, backward {backward})",
                        store.display_fact(&goal)
                    ));
                }
            }
        }
    }
    disagreements
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The structural prover agrees with the materialized closure on
    /// every triple over the active domain, on random databases with
    /// taxonomy, membership, synonym and inversion structure.
    #[test]
    fn prover_equals_forward_closure(
        spec in db_spec(),
        isa_edges in prop::collection::vec((0u8..10, 0u8..10), 0..6),
        syn_pairs in prop::collection::vec((0u8..10, 0u8..10), 0..3),
        inv_pairs in prop::collection::vec((0u8..5, 0u8..5), 0..2),
    ) {
        let bad = prover_closure_disagreements(&spec, &isa_edges, &syn_pairs, &inv_pairs);
        prop_assert!(bad.is_empty(), "{bad:?}");
    }
}

/// Regression promoted from the checked-in seed corpus
/// (`tests/properties.proptest-regressions`): a single fact whose target
/// also carries an `isa` membership edge, combined with an inversion
/// between relationship entities, once made the structural prover
/// disagree with the forward closure. Kept as an explicit test so the
/// case survives corpus pruning and runs without the proptest driver.
#[test]
fn prover_regression_membership_target_with_inversion() {
    let spec = DbSpec { facts: vec![(0, 1, 5)], node_gen_edges: vec![], rel_gen_edges: vec![] };
    let bad = prover_closure_disagreements(&spec, &[(0, 5)], &[], &[(2, 1)]);
    assert!(bad.is_empty(), "{bad:?}");
}

// ---------------------------------------------------------------------
// Parser and codec robustness
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Rendering a parsed query and re-parsing it reaches a fixpoint
    /// (render ∘ parse is idempotent on its image).
    #[test]
    fn parser_render_roundtrip(
        atoms in prop::collection::vec(
            (0u8..4, 0u8..3, 0u8..4, 0u8..3, 0u8..2), 1..5),
        connector_or in prop::collection::vec(any::<bool>(), 0..4),
        quantify in any::<bool>(),
    ) {
        // Build a random query string from a small vocabulary.
        let term = |kind: u8, idx: u8| match kind {
            0 => format!("E{idx}"),
            1 => format!("?v{idx}"),
            _ => "*".to_string(),
        };
        let mut src = String::new();
        for (i, &(s, sk, t, tk, rk)) in atoms.iter().enumerate() {
            if i > 0 {
                let or = connector_or.get(i - 1).copied().unwrap_or(false);
                src.push_str(if or { " | " } else { " & " });
            }
            let rel = if rk == 0 { "REL".to_string() } else { format!("R{s}") };
            src.push_str(&format!(
                "({}, {}, {})",
                term(sk, s),
                rel,
                term(tk, t)
            ));
        }
        if quantify {
            src = format!("exists ?q . (?q, OWNS, E0) & {src}");
        }

        let mut interner = loosedb::Interner::new();
        let q1 = loosedb::parse(&src, &mut interner).expect("parse generated query");
        let rendered1 = q1.render(&interner);
        let q2 = loosedb::parse(&rendered1, &mut interner)
            .unwrap_or_else(|e| panic!("re-parse {rendered1:?}: {e}"));
        let rendered2 = q2.render(&interner);
        prop_assert_eq!(rendered1, rendered2);
    }

    /// The snapshot decoder never panics on arbitrary bytes — it returns
    /// an error or a valid store.
    #[test]
    fn snapshot_decoder_total(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = loosedb::store::snapshot::decode(bytes.as_slice());
    }

    /// Ditto for the log decoder.
    #[test]
    fn log_decoder_total(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = loosedb::store::log::decode(bytes.as_slice());
    }

    /// Corrupting any single byte of a valid snapshot either fails
    /// cleanly or decodes to some well-formed store — never panics.
    #[test]
    fn snapshot_corruption_is_handled(flip_at in 0usize..500, flip_to in any::<u8>()) {
        let mut store = FactStore::new();
        store.add("JOHN", "EARNS", 25000i64);
        store.add("JOHN", "isa", "EMPLOYEE");
        store.add("GPA", "IS", 2.5);
        let mut data = loosedb::store::snapshot::encode(&store).to_vec();
        let i = flip_at % data.len();
        data[i] = flip_to;
        if let Ok(decoded) = loosedb::store::snapshot::decode(data.as_slice()) {
            // If it decodes, it must be internally consistent.
            for f in decoded.iter() {
                let _ = decoded.display_fact(&f);
            }
        }
    }

    /// The query parser never panics on arbitrary printable input.
    #[test]
    fn parser_total(src in "[ -~]{0,80}") {
        let mut interner = loosedb::Interner::new();
        let _ = loosedb::parse(&src, &mut interner);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Incremental closure maintenance (fact-by-fact `extend`) reaches
    /// exactly the same closure as full recomputation.
    #[test]
    fn incremental_extend_equals_recompute(spec in db_spec()) {
        use loosedb::engine::closure;
        let kinds = KindRegistry::new();
        let rules = RuleSet::new();
        let config = InferenceConfig::default();

        // Collect the base facts in insertion order via a builder db.
        let reference = build_db(&spec);
        let base: Vec<(String, String, String)> = reference
            .store()
            .iter()
            .map(|f| {
                (
                    reference.display(f.s),
                    reference.display(f.r),
                    reference.display(f.t),
                )
            })
            .collect();

        let mut store_inc = FactStore::new();
        let mut inc = closure::compute(
            &mut store_inc, &kinds, &rules, &config, ClosureStrategy::SemiNaive,
        ).expect("empty closure");
        for (s, r, t) in &base {
            let f = store_inc.add(s.as_str(), r.as_str(), t.as_str());
            closure::extend(&mut inc, &mut store_inc, &kinds, &rules, &config, &[f])
                .expect("extend");
        }

        let mut store_full = FactStore::new();
        for (s, r, t) in &base {
            store_full.add(s.as_str(), r.as_str(), t.as_str());
        }
        let full = closure::compute(
            &mut store_full, &kinds, &rules, &config, ClosureStrategy::SemiNaive,
        ).expect("full closure");

        let inc_facts: BTreeSet<String> =
            inc.iter().map(|f| store_inc.display_fact(&f)).collect();
        let full_facts: BTreeSet<String> =
            full.iter().map(|f| store_full.display_fact(&f)).collect();
        prop_assert_eq!(inc_facts, full_facts);
        prop_assert_eq!(inc.violations().len(), full.violations().len());
    }

    /// Incremental retraction (support-counted delete-and-rederive) over
    /// random worlds and random add/remove interleavings — including
    /// taxonomy edges, membership, synonyms, inversions and a user rule —
    /// is indistinguishable from full recomputation after every single
    /// operation: same facts, exactness, violation count and domain.
    #[test]
    fn incremental_removal_equals_recompute(
        spec in db_spec(),
        isa_edges in prop::collection::vec((0u8..10, 0u8..10), 0..4),
        syn_pairs in prop::collection::vec((0u8..10, 0u8..10), 0..2),
        inv_pairs in prop::collection::vec((0u8..5, 0u8..5), 0..2),
        ops in prop::collection::vec((any::<bool>(), 0u8..64), 1..30),
    ) {
        use loosedb::engine::closure;
        use loosedb::engine::rule::Rule;

        let kinds = KindRegistry::new();
        let mut rules = RuleSet::new();
        let config = InferenceConfig::default();

        // Candidate base facts: ordinary facts plus every taxonomy
        // flavour, so retraction waves cross rule-derived chains.
        let mut candidates: Vec<(String, String, String)> = Vec::new();
        for &(s, r, t) in &spec.facts {
            candidates.push((format!("N{s}"), format!("R{r}"), format!("N{t}")));
        }
        for &(a, b) in &spec.node_gen_edges {
            candidates.push((format!("N{a}"), "gen".into(), format!("N{b}")));
        }
        for &(a, b) in &spec.rel_gen_edges {
            candidates.push((format!("R{a}"), "gen".into(), format!("R{b}")));
        }
        for &(a, b) in &isa_edges {
            candidates.push((format!("N{a}"), "isa".into(), format!("N{b}")));
        }
        for &(a, b) in &syn_pairs {
            if a != b {
                candidates.push((format!("N{a}"), "syn".into(), format!("N{b}")));
            }
        }
        for &(a, b) in &inv_pairs {
            candidates.push((format!("R{a}"), "inv".into(), format!("R{b}")));
        }
        if candidates.is_empty() {
            return Ok(()); // nothing to add or remove
        }

        let mut store = FactStore::new();
        // One user rule so remove/rederive exercises the backtracking
        // join: (?x, isa, N9) ⇒ (?x, R0, N8).
        {
            let n9 = store.entity("N9");
            let r0 = store.entity("R0");
            let n8 = store.entity("N8");
            let mut b = Rule::builder("members-of-n9");
            let x = b.var("x");
            rules
                .add(b.when(x, loosedb::store::special::ISA, n9).then(x, r0, n8).build().unwrap())
                .unwrap();
        }

        let mut inc = closure::compute(
            &mut store, &kinds, &rules, &config, ClosureStrategy::SemiNaive,
        ).expect("empty closure");

        for &(add, pick) in &ops {
            let (s, r, t) = &candidates[pick as usize % candidates.len()];
            let f = Fact::new(
                store.entity(s.as_str()),
                store.entity(r.as_str()),
                store.entity(t.as_str()),
            );
            if add {
                if store.contains(&f) {
                    continue;
                }
                store.insert(f);
                closure::extend(&mut inc, &mut store, &kinds, &rules, &config, &[f])
                    .expect("extend");
            } else {
                if !store.remove(&f) {
                    continue;
                }
                closure::retract(&mut inc, &mut store, &kinds, &rules, &config, &[f])
                    .expect("retract");
            }

            // Recompute from scratch over a clone (shared interner, so
            // facts compare directly) and demand full agreement.
            let full = closure::compute(
                &mut store.clone(), &kinds, &rules, &config, ClosureStrategy::SemiNaive,
            ).expect("recompute");
            let inc_facts: BTreeSet<Fact> = inc.iter().collect();
            let full_facts: BTreeSet<Fact> = full.iter().collect();
            prop_assert_eq!(&inc_facts, &full_facts, "fact sets diverge");
            for fact in &inc_facts {
                prop_assert_eq!(
                    inc.is_exact(fact),
                    full.is_exact(fact),
                    "exactness diverges on {}",
                    store.display_fact(fact)
                );
            }
            prop_assert_eq!(inc.violations().len(), full.violations().len());
            prop_assert_eq!(inc.domain().to_vec(), full.domain().to_vec());
        }
    }
}
