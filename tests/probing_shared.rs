//! Probing and retraction-wave integration tests on the concurrent
//! ([`SharedSession`]) and durable ([`DurableDatabase`]) paths, asserting
//! the wave metrics (and, under `--features obs`, the per-wave span)
//! fire with the right wave sizes.

use std::sync::Arc;

use loosedb::{
    probe_text, Database, DurableDatabase, ProbeOptions, ProbeOutcome, SharedDatabase,
    SharedSession, SyncPolicy,
};

fn probing_seed(db: &mut Database) {
    // Two-level taxonomy: the original query fails, wave 1 (MUSIC) fails,
    // wave 2 (ART) succeeds.
    db.add("OPERA", "gen", "MUSIC");
    db.add("MUSIC", "gen", "ART");
    db.add("JOHN", "LOVES", "ART");
}

/// Probing through a `SharedSession` records one run, the two waves it
/// took, and a wave-size histogram observation per wave.
#[test]
fn shared_session_probe_records_wave_metrics() {
    let mut db = Database::new();
    probing_seed(&mut db);
    let shared = Arc::new(SharedDatabase::new(db).unwrap());
    let mut s = SharedSession::new(Arc::clone(&shared));

    let report = s.probe("(JOHN, LOVES, OPERA)").unwrap();
    assert!(matches!(report.outcome, ProbeOutcome::RetractionsSucceeded { wave: 1 }));
    assert_eq!(report.waves.len(), 2);

    let snap = shared.metrics_snapshot();
    assert_eq!(snap.browse.probe_runs, 1);
    assert_eq!(snap.browse.probe_waves, 2);
    assert_eq!(snap.browse.probe_wave_size.count, 2);
    // The histogram's sum is the total attempts, which equals the
    // per-wave attempt counts the report itself carries.
    let attempts: u64 = report.waves.iter().map(|w| w.attempts.len() as u64).sum();
    assert_eq!(snap.browse.probe_wave_size.sum, attempts);
    assert_eq!(snap.browse.probe_attempts, attempts);
    assert_eq!(snap.browse.probe_successes, 1);

    // A successful query is still one probe run but adds no waves.
    s.probe("(JOHN, LOVES, ART)").unwrap();
    let snap = shared.metrics_snapshot();
    assert_eq!(snap.browse.probe_runs, 2);
    assert_eq!(snap.browse.probe_waves, 2);
}

/// Retraction over a recovered durable database: probing works on the
/// replayed state and its metrics land in the recovered database's
/// registry.
#[test]
fn durable_database_probe_after_recovery() {
    let dir = std::env::temp_dir().join(format!("loosedb-probing-shared-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let mut db = DurableDatabase::open(&dir, SyncPolicy::Always).unwrap();
        db.add("OPERA", "gen", "MUSIC").unwrap();
        db.add("MUSIC", "gen", "ART").unwrap();
        db.add("JOHN", "LOVES", "ART").unwrap();
    }
    // Reopen: the WAL replays the three facts into a fresh database.
    let mut db = DurableDatabase::open(&dir, SyncPolicy::Always).unwrap();
    assert_eq!(db.metrics().snapshot().wal.recovered_ops, 3);

    let report =
        probe_text("(JOHN, LOVES, OPERA)", db.database(), &ProbeOptions::default()).unwrap();
    assert!(matches!(report.outcome, ProbeOutcome::RetractionsSucceeded { wave: 1 }));

    // `probe_text` is the bare protocol (no session), so the session-side
    // counters stay zero — the closure compute it triggered is recorded.
    let snap = db.metrics().snapshot();
    assert_eq!(snap.closure.computes, 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Under `--features obs`, each retraction wave emits a
/// `browse.retraction_wave` span whose `attempts` field matches the
/// report's wave sizes. Without the feature, capture stays silent.
#[test]
fn retraction_wave_spans_carry_wave_sizes() {
    let mut db = Database::new();
    probing_seed(&mut db);
    let shared = Arc::new(SharedDatabase::new(db).unwrap());
    let mut s = SharedSession::new(Arc::clone(&shared));

    loosedb::obs::trace::set_capture(true);
    let report = s.probe("(JOHN, LOVES, OPERA)").unwrap();
    let spans = loosedb::obs::trace::drain();
    loosedb::obs::trace::set_capture(false);

    if !cfg!(feature = "obs") {
        assert!(spans.is_empty(), "span capture must be a no-op without the obs feature");
        return;
    }
    let waves: Vec<_> = spans.iter().filter(|s| s.name == "browse.retraction_wave").collect();
    assert_eq!(waves.len(), report.waves.len(), "one span per wave: {spans:?}");
    for (i, span) in waves.iter().enumerate() {
        let field = |name: &str| -> Option<String> {
            span.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| format!("{v}"))
        };
        assert_eq!(field("wave").as_deref(), Some(i.to_string().as_str()), "{span:?}");
        assert_eq!(
            field("attempts").as_deref(),
            Some(report.waves[i].attempts.len().to_string().as_str()),
            "{span:?}"
        );
        assert_eq!(span.parent, Some("browse.probe"), "{span:?}");
    }
}
