//! Golden tests: the paper's worked examples must render exactly.
//!
//! These pin down the §4.1 navigation tables, the §5.2 probing menu and
//! the §6.1 relation table, end to end through the public API.

use loosedb::datagen::{music_world, probing_world, relation_world, PROBING_QUERY};
use loosedb::{navigate, probe_text, relation, FactView, NavigateOptions, Pattern, ProbeOptions};

#[test]
fn golden_section_4_1_john_table() {
    let mut db = music_world();
    let john = db.lookup_symbol("JOHN").unwrap();
    let view = db.view().unwrap();
    let table = navigate(&view, Pattern::from_source(john), &NavigateOptions::default()).unwrap();
    let expected = "\
JOHN,*,*    | BOSS  | FAVORITE-MUSIC | LIKES      | WORKS-FOR
----------- | ----- | -------------- | ---------- | ---------
EMPLOYEE    | PETER | CLASSICAL      | CAT        | SHIPPING
MUSIC-LOVER |       | COMPOSITION    | FELIX      |
PERSON      |       | CONCERTO       | HEATHCLIFF |
PET-OWNER   |       | PC#2-PIT       | MARY       |
            |       | PC#9-WAM       | MOZART     |
            |       | S#5-LVB        |            |
";
    assert_eq!(table.to_string(), expected);
}

#[test]
fn golden_section_4_1_pc9_table() {
    let mut db = music_world();
    let pc9 = db.lookup_symbol("PC#9-WAM").unwrap();
    let view = db.view().unwrap();
    let table = navigate(&view, Pattern::from_source(pc9), &NavigateOptions::default()).unwrap();
    let expected = "\
PC#9-WAM,*,* | COMPOSED-BY | FAVORITE-OF | PERFORMED-BY
------------ | ----------- | ----------- | ------------
CLASSICAL    | MOZART      | EMPLOYEE    | BARENBOIM
COMPOSITION  |             | JOHN        | SERKIN
CONCERTO     |             | LEOPOLD     |
             |             | MUSIC-LOVER |
             |             | PERSON      |
             |             | PET-OWNER   |
";
    assert_eq!(table.to_string(), expected);
}

#[test]
fn golden_section_4_1_leopold_mozart() {
    let mut db = music_world();
    let leopold = db.lookup_symbol("LEOPOLD").unwrap();
    let mozart = db.lookup_symbol("MOZART").unwrap();
    let view = db.view().unwrap();
    let table = navigate(
        &view,
        Pattern::new(Some(leopold), None, Some(mozart)),
        &NavigateOptions::default(),
    )
    .unwrap();
    // The paper's two associations: the direct FATHER-OF fact and the
    // composed FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY path.
    let headers: Vec<&str> = (1..=table.columns.len()).map(|i| table.header(i).unwrap()).collect();
    assert_eq!(headers, vec!["FATHER-OF", "FAVORITE-MUSIC.PC#9-WAM.COMPOSED-BY"]);
}

#[test]
fn golden_section_5_2_menu() {
    let mut db = probing_world();
    let report = probe_text(PROBING_QUERY, &mut db, &ProbeOptions::default()).unwrap();
    let menu = report.render_menu(db.store().interner());
    let expected = "\
Query failed. Retrying

1. Success with FRESHMAN instead of STUDENT
2. Success with CHEAP instead of FREE

You may select
";
    assert_eq!(menu, expected);
}

#[test]
fn golden_section_5_2_retraction_queries() {
    // The four minimally broader queries the paper lists, verbatim up to
    // our ASCII syntax.
    use loosedb::engine::Taxonomy;
    let mut db = probing_world();
    let query = loosedb::parse(PROBING_QUERY, db.store_interner_mut()).unwrap();
    let view = db.view().unwrap();
    let taxonomy = Taxonomy::new(view.closure());
    let mut missing = std::collections::BTreeSet::new();
    let mut rendered: Vec<String> =
        loosedb::browse::retraction_set(&query, &taxonomy, &mut missing)
            .into_iter()
            .map(|(q, _)| q.render(view.interner()))
            .collect();
    rendered.sort();
    assert_eq!(
        rendered,
        vec![
            // Q1: freshmen instead of students (G1).
            "Q(?z) := (FRESHMAN, LOVE, ?z) & (?z, COSTS, FREE)",
            // Q2: like instead of love (G2).
            "Q(?z) := (STUDENT, LIKE, ?z) & (?z, COSTS, FREE)",
            // Q4: cheap instead of free (G3).
            "Q(?z) := (STUDENT, LOVE, ?z) & (?z, COSTS, CHEAP)",
            // Q3: related to FREE in any way (COSTS ≺ Δ).
            "Q(?z) := (STUDENT, LOVE, ?z) & (?z, TOP, FREE)",
        ]
    );
    assert!(missing.is_empty());
}

#[test]
fn golden_section_6_1_relation_table() {
    let mut db = relation_world();
    let employee = db.lookup_symbol("EMPLOYEE").unwrap();
    let works_for = db.lookup_symbol("WORKS-FOR").unwrap();
    let department = db.lookup_symbol("DEPARTMENT").unwrap();
    let earns = db.lookup_symbol("EARNS").unwrap();
    let salary = db.lookup_symbol("SALARY").unwrap();
    let view = db.view().unwrap();
    let table = relation(&view, employee, &[(works_for, department), (earns, salary)]).unwrap();
    let expected = "\
EMPLOYEE | WORKS-FOR DEPARTMENT | EARNS SALARY
---------+----------------------+-------------
JOHN     | SHIPPING             | 26000
TOM      | ACCOUNTING           | 27000
MARY     | RECEIVING            | 25000
";
    assert_eq!(table.render(view.interner()), expected);
}

#[test]
fn golden_misspelling_diagnosis() {
    // §5.2's closing example: a query with an entity that is not in the
    // database is reported as "no such database entities".
    let mut db = music_world();
    let report = probe_text("(JOHN, LOOVES, ?z)", &mut db, &ProbeOptions::default()).unwrap();
    let menu = report.render_menu(db.store().interner());
    assert_eq!(menu, "Query failed: no such database entities: LOOVES\n");
}
