//! Property-based replica equivalence: a follower replaying an
//! arbitrary prefix of shipped frames equals the leader's generation at
//! that point — base store, materialized closure, *and* active domain —
//! including after a mid-prefix crash and restart.
//!
//! The leader runs a random op sequence (inserts, removals, `gen`/`inv`
//! edges that exercise inference, checkpoints at random positions, with
//! and without WAL retention) on an always-synced [`MemIo`]. A follower
//! tails it with a random poll cadence and batch size; at a random point
//! it is dropped, the filesystem is crashed (unsynced bytes vanish), and
//! it is reopened. At every observation point the follower's generation
//! must be *some* oracle prefix of the op sequence — equal in all three
//! components, never a torn or half-applied state — and after the final
//! catch-up it must equal the leader exactly.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use loosedb::engine::view::compute_domain;
use loosedb::{
    Database, DurableDatabase, EntityValue, Fact, FactStore, Replica, ReplicaOptions, SyncPolicy,
};
use loosedb_store::io::MemIo;

/// One scripted leader operation.
#[derive(Clone, Debug)]
enum Op {
    /// Insert fact (`E<s>`, `R<r>`, `E<t>`).
    Insert(u8, u8, u8),
    /// Insert a generalization edge `E<a> gen E<b>` (a < b keeps it a DAG).
    Gen(u8, u8),
    /// Remove the i-th previously inserted fact (mod count; no-op
    /// removals included).
    Remove(u8),
    /// Leader checkpoint (segment rotation on the wire).
    Checkpoint,
}

#[derive(Clone, Debug)]
struct Scenario {
    ops: Vec<Op>,
    retain_wals: u64,
    poll_every: usize,
    batch_ops: usize,
    /// Crash the follower after this many polls (mod polls performed).
    crash_after_polls: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    // The vendored proptest shim has no `prop_oneof`, so op kinds are
    // decoded from a weighted selector byte: 6/11 insert, 2/11 gen edge,
    // 2/11 remove, 1/11 checkpoint.
    let raw_op = (0u8..11, 0u8..8, 0u8..4, 0u8..8);
    (prop::collection::vec(raw_op, 4..40), 0u64..2, 1usize..5, 1usize..5, 0usize..12).prop_map(
        |(raw, retain_wals, poll_every, batch_ops, crash_after_polls)| {
            let ops = raw
                .into_iter()
                .map(|(kind, a, b, c)| match kind {
                    0..=5 => Op::Insert(a, b, c),
                    6 | 7 => {
                        // A generalization edge with lo < hi (a DAG).
                        let lo = a % 7;
                        let hi = lo + 1 + (c % (7 - lo));
                        Op::Gen(lo, hi)
                    }
                    8 | 9 => Op::Remove(a.wrapping_mul(8).wrapping_add(c)),
                    _ => Op::Checkpoint,
                })
                .collect();
            Scenario { ops, retain_wals, poll_every, batch_ops, crash_after_polls }
        },
    )
}

/// Rendered, id-independent image of one generation: base facts,
/// closure facts, active domain.
type Image = (BTreeSet<String>, BTreeSet<String>, BTreeSet<String>);

fn render_fact(store: &FactStore, f: &Fact) -> String {
    format!("{} {} {}", store.value(f.s), store.value(f.r), store.value(f.t))
}

fn image_of(db: &mut Database) -> Image {
    db.refresh().expect("closure");
    let (closure_facts, domain_ids) = {
        let closure = db.closure().expect("closure");
        (closure.iter().collect::<Vec<_>>(), compute_domain(closure))
    };
    let store = db.store();
    let base: BTreeSet<String> = store.iter().map(|f| render_fact(store, &f)).collect();
    let closed: BTreeSet<String> = closure_facts.iter().map(|f| render_fact(store, f)).collect();
    let domain: BTreeSet<String> =
        domain_ids.into_iter().map(|e| store.value(e).to_string()).collect();
    (base, closed, domain)
}

fn replica_image(replica: &Replica<Arc<MemIo>>) -> Image {
    let g = replica.shared().snapshot();
    let store = g.store();
    let base: BTreeSet<String> = store.iter().map(|f| render_fact(store, &f)).collect();
    let closed: BTreeSet<String> = g.closure().iter().map(|f| render_fact(store, &f)).collect();
    let domain: BTreeSet<String> =
        compute_domain(g.closure()).into_iter().map(|e| store.value(e).to_string()).collect();
    (base, closed, domain)
}

fn apply_oracle(db: &mut Database, op: &Op, inserted: &mut Vec<(String, String, String)>) {
    match op {
        Op::Insert(s, r, t) => {
            let (s, r, t) = (format!("E{s}"), format!("R{r}"), format!("E{t}"));
            inserted.push((s.clone(), r.clone(), t.clone()));
            db.add(s, r, t);
        }
        Op::Gen(a, b) => {
            let (s, t) = (format!("E{a}"), format!("E{b}"));
            inserted.push((s.clone(), "gen".into(), t.clone()));
            db.add(s, "gen", t);
        }
        Op::Remove(i) => {
            if inserted.is_empty() {
                return;
            }
            let (s, r, t) = inserted[*i as usize % inserted.len()].clone();
            let f = Fact::new(
                db.entity(EntityValue::symbol(s)),
                db.entity(EntityValue::symbol(r)),
                db.entity(EntityValue::symbol(t)),
            );
            db.remove(&f);
        }
        Op::Checkpoint => {}
    }
}

fn apply_leader(
    leader: &mut DurableDatabase<Arc<MemIo>>,
    op: &Op,
    inserted: &mut Vec<(String, String, String)>,
) {
    match op {
        Op::Insert(s, r, t) => {
            let (s, r, t) = (format!("E{s}"), format!("R{r}"), format!("E{t}"));
            inserted.push((s.clone(), r.clone(), t.clone()));
            leader.add(s, r, t).unwrap();
        }
        Op::Gen(a, b) => {
            let (s, t) = (format!("E{a}"), format!("E{b}"));
            inserted.push((s.clone(), "gen".into(), t.clone()));
            leader.add(s, "gen", t).unwrap();
        }
        Op::Remove(i) => {
            if inserted.is_empty() {
                return;
            }
            let (s, r, t) = inserted[*i as usize % inserted.len()].clone();
            let inner = leader.database();
            let f = Fact::new(
                inner.entity(EntityValue::symbol(s)),
                inner.entity(EntityValue::symbol(r)),
                inner.entity(EntityValue::symbol(t)),
            );
            leader.remove(&f).unwrap();
        }
        Op::Checkpoint => {
            leader.checkpoint().unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn follower_prefix_equals_leader_generation(s in scenario()) {
        // Oracle: the full image after every op prefix.
        let mut oracle_db = Database::new();
        let mut oracle_inserted = Vec::new();
        let mut oracle: Vec<Image> = vec![image_of(&mut oracle_db)];
        for op in &s.ops {
            apply_oracle(&mut oracle_db, op, &mut oracle_inserted);
            oracle.push(image_of(&mut oracle_db));
        }

        let mem = Arc::new(MemIo::new());
        let mut leader =
            DurableDatabase::open_with(Arc::clone(&mem), "/leader", SyncPolicy::Always).unwrap();
        leader.set_retain_wals(s.retain_wals);
        let opts = ReplicaOptions {
            batch_ops: s.batch_ops,
            max_retries: 1,
            retry_backoff: Duration::ZERO,
        };
        let mut replica: Option<Replica<Arc<MemIo>>> =
            Some(Replica::open_with(Arc::clone(&mem), "/leader", "/replica", opts).unwrap());

        let mut inserted = Vec::new();
        let mut polls = 0usize;
        let mut crashed = false;
        let crash_target = s.crash_after_polls;
        for (i, op) in s.ops.iter().enumerate() {
            apply_leader(&mut leader, op, &mut inserted);
            if (i + 1) % s.poll_every != 0 {
                continue;
            }
            let r = replica.as_mut().unwrap();
            r.poll().unwrap();
            // Every observed follower generation is a coherent oracle
            // prefix: store, closure and domain all agree at once.
            let img = replica_image(replica.as_ref().unwrap());
            prop_assert!(
                oracle.contains(&img),
                "follower generation after poll {polls} is not an oracle prefix"
            );
            polls += 1;
            if !crashed && polls == crash_target + 1 {
                // Mid-prefix crash: drop the follower, lose unsynced
                // bytes, reopen, and keep going.
                crashed = true;
                drop(replica.take());
                mem.crash();
                let reopened =
                    Replica::open_with(Arc::clone(&mem), "/leader", "/replica", opts).unwrap();
                let img = replica_image(&reopened);
                prop_assert!(
                    oracle.contains(&img),
                    "follower generation after crash/restart is not an oracle prefix"
                );
                replica = Some(reopened);
            }
        }

        // Final convergence: catch up and match the leader exactly.
        let mut r = replica.take().unwrap();
        r.catch_up().unwrap();
        let final_img = replica_image(&r);
        prop_assert_eq!(&final_img, oracle.last().unwrap());
        prop_assert_eq!(&final_img, &image_of(leader.database()));
    }
}
