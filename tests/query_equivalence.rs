//! Property-based equivalence of the two query executors.
//!
//! The set-at-a-time hash-join executor (the default) must return exactly
//! the answer of the binding-at-a-time nested-loop oracle it replaced, on
//! every formula shape the language can express — conjunctions with
//! shared variables, disconnected conjuncts (cross products),
//! disjunctions, both quantifiers, and math comparators — and under both
//! conjunct orderings. Random small worlds give the coverage hand-picked
//! examples cannot.
//!
//! One asymmetry is expected and deliberate: the `max_rows` guard counts
//! *rows produced*, and the nested-loop oracle produces duplicate partial
//! rows the hash join never materializes (it probes once per distinct
//! join key). The oracle can therefore hit `ResultTooLarge` on inputs the
//! hash join handles; answers are compared only when both strategies
//! return `Ok`. `same_outcome_under_generous_limit` pins the flip side:
//! with room to breathe, both succeed and agree.

use proptest::prelude::*;

use loosedb::query::{eval_with, AtomOrdering, EvalOptions, ExecStrategy, ParallelMode};
use loosedb::Database;

/// A compact random world: node entities N0..N9, relationships R0..R4,
/// a few integers, and generalization edges forming a DAG.
#[derive(Clone, Debug)]
struct WorldSpec {
    facts: Vec<(u8, u8, u8)>,
    numbers: Vec<(u8, i64)>,
    gen_edges: Vec<(u8, u8)>,
}

fn world_spec() -> impl Strategy<Value = WorldSpec> {
    (
        prop::collection::vec((0u8..10, 0u8..5, 0u8..10), 0..30),
        prop::collection::vec((0u8..10, 0i64..100), 0..6),
        prop::collection::vec((0u8..9, 0u8..10), 0..6),
    )
        .prop_map(|(facts, numbers, raw_edges)| WorldSpec {
            facts,
            numbers,
            gen_edges: raw_edges.into_iter().filter(|(a, b)| a < b).collect(),
        })
}

fn build_world(spec: &WorldSpec) -> Database {
    let mut db = Database::new();
    for &(s, r, t) in &spec.facts {
        db.add(format!("N{s}"), format!("R{r}"), format!("N{t}"));
    }
    for &(s, n) in &spec.numbers {
        db.add(format!("N{s}"), "EARNS", n);
    }
    for &(a, b) in &spec.gen_edges {
        db.add(format!("N{a}"), "gen", format!("N{b}"));
    }
    db
}

/// Every (strategy, ordering) combination under one row limit, plus the
/// partitioned hash executor forced on (the `EvalOptions::default()`
/// base also honors `LOOSEDB_PARALLEL_JOIN=force`, which the CI stress
/// job sets to drive *every* hash combo down the partitioned path).
fn combos(max_rows: usize) -> Vec<EvalOptions> {
    let mut out: Vec<EvalOptions> = [
        (ExecStrategy::Adaptive, AtomOrdering::Greedy),
        (ExecStrategy::HashJoin, AtomOrdering::Greedy),
        (ExecStrategy::HashJoin, AtomOrdering::Syntactic),
        (ExecStrategy::NestedLoop, AtomOrdering::Greedy),
        (ExecStrategy::NestedLoop, AtomOrdering::Syntactic),
    ]
    .into_iter()
    .map(|(strategy, ordering)| EvalOptions {
        ordering,
        strategy,
        max_rows,
        ..EvalOptions::default()
    })
    .collect();
    out.push(EvalOptions {
        strategy: ExecStrategy::HashJoin,
        parallel: ParallelMode::Force(3),
        max_rows,
        ..EvalOptions::default()
    });
    out
}

/// Evaluates `src` under all four combos and asserts every pair that
/// returned `Ok` produced identical answer rows.
fn assert_agreement(db: &mut Database, src: &str, max_rows: usize) -> Result<(), TestCaseError> {
    let query = loosedb::parse(src, db.store_interner_mut()).expect("parse");
    let view = db.view().expect("closure");
    let answers: Vec<_> =
        combos(max_rows).into_iter().map(|opts| (opts, eval_with(&query, &view, opts))).collect();
    let mut ok = answers.iter().filter_map(|(o, r)| r.as_ref().ok().map(|a| (o, a)));
    if let Some((first_opts, first)) = ok.next() {
        for (opts, answer) in ok {
            prop_assert_eq!(
                &first.rows,
                &answer.rows,
                "{:?} and {:?} disagree on {}",
                first_opts,
                opts,
                src,
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conjunctive chains with shared variables: the bread-and-butter
    /// hash-join path (existential middles exercise semi-join pushdown).
    #[test]
    fn chains_agree(
        spec in world_spec(),
        r1 in 0u8..5, r2 in 0u8..5, r3 in 0u8..5,
    ) {
        let mut db = build_world(&spec);
        let src = format!(
            "Q(?a, ?c) := exists ?b . (?a, R{r1}, ?b) & (?b, R{r2}, ?c) & (?a, R{r3}, ?c)"
        );
        assert_agreement(&mut db, &src, 100_000)?;
    }

    /// Disconnected conjuncts force the cross-product fallback, where the
    /// join has no shared key columns.
    #[test]
    fn cross_products_agree(
        spec in world_spec(),
        r1 in 0u8..5, r2 in 0u8..5,
    ) {
        let mut db = build_world(&spec);
        let src = format!("Q(?a, ?b, ?c, ?d) := (?a, R{r1}, ?b) & (?c, R{r2}, ?d)");
        assert_agreement(&mut db, &src, 100_000)?;
    }

    /// Disjunction pads heterogeneous columns from the active domain; both
    /// executors must pad identically.
    #[test]
    fn disjunctions_agree(
        spec in world_spec(),
        r1 in 0u8..5, r2 in 0u8..5, s in 0u8..10,
    ) {
        let mut db = build_world(&spec);
        let src = format!("Q(?x) := (?x, R{r1}, N{s}) | (N{s}, R{r2}, ?x)");
        assert_agreement(&mut db, &src, 100_000)?;
    }

    /// Universal quantification (relational division) over the active
    /// domain, with a conjunctive body.
    #[test]
    fn universals_agree(
        spec in world_spec(),
        r1 in 0u8..5, r2 in 0u8..5,
    ) {
        let mut db = build_world(&spec);
        let src = format!(
            "Q(?x) := forall ?y . exists ?z . (?x, R{r1}, ?z) & (?y, R{r2}, ?z)"
        );
        assert_agreement(&mut db, &src, 100_000)?;
    }

    /// Math comparators enumerate interned numbers; mixed with a join they
    /// exercise the planner's math-last heuristic on both paths.
    #[test]
    fn comparators_agree(
        spec in world_spec(),
        threshold in 0i64..100,
    ) {
        let mut db = build_world(&spec);
        let src = format!(
            "Q(?x) := exists ?y . (?x, EARNS, ?y) & (?y, >, {threshold})"
        );
        assert_agreement(&mut db, &src, 100_000)?;
    }

    /// Under a generous limit neither strategy overflows, so all four
    /// combos must return `Ok` with identical rows — no vacuous agreement.
    #[test]
    fn same_outcome_under_generous_limit(
        spec in world_spec(),
        r1 in 0u8..5, r2 in 0u8..5,
    ) {
        let mut db = build_world(&spec);
        let src = format!("Q(?a, ?c) := exists ?b . (?a, R{r1}, ?b) & (?b, R{r2}, ?c)");
        let query = loosedb::parse(&src, db.store_interner_mut()).expect("parse");
        let view = db.view().expect("closure");
        let mut rows = None;
        for opts in combos(10_000_000) {
            let answer = eval_with(&query, &view, opts).expect("generous limit");
            let got = answer.rows;
            if let Some(prev) = &rows {
                prop_assert_eq!(prev, &got, "{:?} diverged on {}", opts, src);
            } else {
                rows = Some(got);
            }
        }
    }
}
