//! Sharded-vs-single equivalence, property-tested.
//!
//! The sharding layer's contract (DESIGN.md §14) is that partitioning is
//! *invisible*: for any database and any interleaving of additions and
//! retractions, the union of the per-shard closures is exactly the
//! closure a single store would compute — same facts, same exactness
//! judgments, same integrity violations, same active domain, and same
//! answers to every query, whether it scatters whole (collocated) or
//! gathers through the union view. This suite drives random worlds with
//! taxonomy edges, synonyms and inversions through random add/remove
//! interleavings at N ∈ {1, 2, 4} shards and demands all five
//! agreements, mirroring `incremental_removal_equals_recompute` in
//! `tests/properties.rs`.
//!
//! Ids differ between the sharded and single interners, so every
//! comparison goes through display strings (portable across interners).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;

use loosedb::engine::Violation;
use loosedb::{
    parse, Database, EntityValue, Fact, ShardedDatabase, ShardedSession, ShardedSnapshot,
};

/// A compact description of a random database: node entities N0..N9,
/// relationship entities R0..R4, plus generalization edges that form a
/// DAG (edges only go from lower to higher index, so no accidental
/// synonyms).
#[derive(Clone, Debug)]
struct DbSpec {
    facts: Vec<(u8, u8, u8)>,
    node_gen_edges: Vec<(u8, u8)>,
    rel_gen_edges: Vec<(u8, u8)>,
}

fn db_spec() -> impl Strategy<Value = DbSpec> {
    (
        prop::collection::vec((0u8..10, 0u8..5, 0u8..10), 0..25),
        prop::collection::vec((0u8..9, 0u8..10), 0..8),
        prop::collection::vec((0u8..4, 0u8..5), 0..4),
    )
        .prop_map(|(facts, raw_node_edges, raw_rel_edges)| DbSpec {
            facts,
            node_gen_edges: raw_node_edges.into_iter().filter(|(a, b)| a < b).collect(),
            rel_gen_edges: raw_rel_edges.into_iter().filter(|(a, b)| a < b).collect(),
        })
}

/// Every entity name the generators can mention, pre-interned on both
/// sides so query constants always resolve.
fn all_names() -> Vec<String> {
    (0..10).map(|i| format!("N{i}")).chain((0..5).map(|i| format!("R{i}"))).collect()
}

/// The triple candidates an op sequence picks from: ordinary facts plus
/// every taxonomy flavour, so retraction crosses rule-derived chains.
fn candidates(
    spec: &DbSpec,
    isa_edges: &[(u8, u8)],
    syn_pairs: &[(u8, u8)],
    inv_pairs: &[(u8, u8)],
) -> Vec<(String, String, String)> {
    let mut out: Vec<(String, String, String)> = Vec::new();
    for &(s, r, t) in &spec.facts {
        out.push((format!("N{s}"), format!("R{r}"), format!("N{t}")));
    }
    for &(a, b) in &spec.node_gen_edges {
        out.push((format!("N{a}"), "gen".into(), format!("N{b}")));
    }
    for &(a, b) in &spec.rel_gen_edges {
        out.push((format!("R{a}"), "gen".into(), format!("R{b}")));
    }
    for &(a, b) in isa_edges {
        out.push((format!("N{a}"), "isa".into(), format!("N{b}")));
    }
    for &(a, b) in syn_pairs {
        if a != b {
            out.push((format!("N{a}"), "syn".into(), format!("N{b}")));
        }
    }
    for &(a, b) in inv_pairs {
        out.push((format!("R{a}"), "inv".into(), format!("R{b}")));
    }
    out
}

/// The queries compared on every generated world: collocated shapes
/// (single source variable — scatter whole, gather answers), cross-shard
/// chains (gathered through the union view and finished by the
/// partitioned join), a broadcast-relationship probe and a disjunction.
const QUERIES: &[&str] = &[
    "Q(?x, ?y) := (?x, R0, ?y)",
    "Q(?x) := exists ?y . exists ?z . (?x, R0, ?y) & (?x, R1, ?z)",
    "Q(?x, ?z) := exists ?y . (?x, R0, ?y) & (?y, R1, ?z)",
    "Q(?x) := (?x, isa, N9)",
    "Q(?x) := (?x, R0, N1) | (?x, R1, N1)",
];

fn closure_displays(snap: &ShardedSnapshot) -> BTreeMap<String, bool> {
    let mut out = BTreeMap::new();
    for g in snap.generations() {
        for f in g.closure().iter() {
            let key =
                format!("({}, {}, {})", snap.display(f.s), snap.display(f.r), snap.display(f.t));
            // Exactness is the owner shard's judgment, identical on every
            // shard that holds a copy only for exact facts — so query it
            // through the snapshot, not the shard we found the fact on.
            out.insert(key, snap.is_exact(&f));
        }
    }
    out
}

fn violation_key(display: &dyn Fn(loosedb::EntityId) -> String, v: &Violation) -> String {
    let fact = |f: &Fact| format!("({}, {}, {})", display(f.s), display(f.r), display(f.t));
    match v {
        Violation::Contradiction { fact: a, conflicting, via } => {
            // The two sides of a contradiction can be discovered in
            // either order; canonicalize.
            let (mut x, mut y) = (fact(a), fact(conflicting));
            if x > y {
                std::mem::swap(&mut x, &mut y);
            }
            format!("contradiction {x} / {y} via {}", fact(via))
        }
        Violation::MathFalse { fact: f, .. } => format!("math-false {}", fact(f)),
        Violation::MathUndefined { fact: f, .. } => format!("math-undefined {}", fact(f)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For random worlds and random add/remove interleavings, a sharded
    /// database at N ∈ {1, 2, 4} is observationally identical to a
    /// single store: closure facts, exactness, violations, domain and
    /// all answer sets agree.
    #[test]
    fn sharded_equals_single_store(
        spec in db_spec(),
        isa_edges in prop::collection::vec((0u8..10, 0u8..10), 0..4),
        syn_pairs in prop::collection::vec((0u8..10, 0u8..10), 0..2),
        inv_pairs in prop::collection::vec((0u8..5, 0u8..5), 0..2),
        ops in prop::collection::vec((any::<bool>(), 0u8..64), 1..25),
    ) {
        let candidates = candidates(&spec, &isa_edges, &syn_pairs, &inv_pairs);
        if candidates.is_empty() {
            return Ok(()); // nothing to add or remove
        }

        // --- Single-store reference ---------------------------------
        let mut single = Database::new();
        for name in all_names() {
            single.store_interner_mut().intern(EntityValue::symbol(&name));
        }
        // Record which ops took effect so every replica of the sequence
        // agrees on the final base set.
        let mut effective: Vec<(bool, usize)> = Vec::new();
        for &(add, pick) in &ops {
            let i = pick as usize % candidates.len();
            let (s, r, t) = &candidates[i];
            if add {
                let f = Fact::new(
                    single.store().interner().lookup_symbol(s).unwrap(),
                    single.store().interner().lookup_symbol(r).unwrap(),
                    single.store().interner().lookup_symbol(t).unwrap(),
                );
                if single.store().contains(&f) {
                    continue;
                }
                single.add(s.as_str(), r.as_str(), t.as_str());
            } else {
                let f = Fact::new(
                    single.store().interner().lookup_symbol(s).unwrap(),
                    single.store().interner().lookup_symbol(r).unwrap(),
                    single.store().interner().lookup_symbol(t).unwrap(),
                );
                if !single.remove(&f) {
                    continue;
                }
            }
            effective.push((add, i));
        }

        let mut expected_facts: BTreeMap<String, bool> = BTreeMap::new();
        let mut expected_violations: BTreeSet<String> = BTreeSet::new();
        let mut expected_domain: BTreeSet<String> = BTreeSet::new();
        {
            single.refresh().unwrap();
            let collected: Vec<(Fact, bool)> = {
                let closure = single.closure().unwrap();
                closure.iter().map(|f| (f, closure.is_exact(&f))).collect()
            };
            for (f, exact) in collected {
                expected_facts.insert(single.display_fact(&f), exact);
            }
            let violations = single.closure().unwrap().violations().to_vec();
            let domain = single.closure().unwrap().domain().to_vec();
            let disp = |id| single.store().display(id);
            for v in &violations {
                expected_violations.insert(violation_key(&disp, v));
            }
            for id in domain {
                expected_domain.insert(single.store().display(id));
            }
        }
        let mut expected_answers: Vec<String> = Vec::new();
        for q in QUERIES {
            let parsed = parse(q, single.store_interner_mut()).unwrap();
            let view = single.view().unwrap();
            let answer = loosedb::query::eval(&parsed, &view).unwrap();
            expected_answers.push(answer.render(single.store().interner()));
        }

        // --- Sharded replicas at N ∈ {1, 2, 4} ----------------------
        for n in [1usize, 2, 4] {
            let db = ShardedDatabase::new(n).unwrap();
            for name in all_names() {
                db.entity(EntityValue::symbol(&name));
            }
            for &(add, i) in &effective {
                let (s, r, t) = &candidates[i];
                if add {
                    db.insert(s.as_str(), r.as_str(), t.as_str()).unwrap();
                } else {
                    let f = Fact::new(
                        db.entity(EntityValue::symbol(s)),
                        db.entity(EntityValue::symbol(r)),
                        db.entity(EntityValue::symbol(t)),
                    );
                    prop_assert!(db.remove(&f).unwrap(), "n={}: remove must mirror single", n);
                }
            }
            let snap = db.snapshot();

            let got_facts = closure_displays(&snap);
            prop_assert_eq!(&got_facts, &expected_facts, "n={}: facts or exactness diverge", n);

            let disp = |id| snap.display(id);
            let got_violations: BTreeSet<String> =
                snap.violations().iter().map(|v| violation_key(&disp, v)).collect();
            prop_assert_eq!(&got_violations, &expected_violations, "n={}: violations", n);

            let got_domain: BTreeSet<String> =
                snap.domain().into_iter().map(|id| snap.display(id)).collect();
            prop_assert_eq!(&got_domain, &expected_domain, "n={}: domain", n);

            let mut session = ShardedSession::new(Arc::new(db));
            for (q, expected) in QUERIES.iter().zip(&expected_answers) {
                let answer = session.query(q).unwrap();
                let rendered = answer.render(session.snapshot().interner());
                prop_assert_eq!(&rendered, expected, "n={}: answers diverge on {}", n, q);
            }
        }
    }
}
