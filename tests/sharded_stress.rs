//! Sharded stress: concurrent writers on distinct shards racing
//! snapshot readers that run cross-shard joins and collocated scatters.
//!
//! The router serializes writes behind one route lock, but each shard
//! publishes its own generation chain — so a writer on shard 2 never
//! invalidates a reader's snapshot of shard 0, per-shard epochs are
//! monotone, and every reader sees each shard at a prefix-consistent
//! generation. This suite runs in release mode in CI (with debug
//! assertions) so the interleavings are real; see the `sharded-stress`
//! job.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use loosedb::query::{eval_sharded, EvalOptions};
use loosedb::{parse_frozen, FactView, Pattern, ShardedDatabase, ShardedSession};

const SHARDS: usize = 4;

/// Source names bucketed by owner shard, so each writer thread can be
/// pinned to its own partition (no two writers ever publish to the same
/// shard).
fn names_by_shard(db: &ShardedDatabase) -> Vec<Vec<String>> {
    let mut buckets: Vec<Vec<String>> = vec![Vec::new(); SHARDS];
    let mut i = 0u64;
    while buckets.iter().any(|b| b.len() < 400) {
        let name = format!("SRC-{i}");
        let id = db.entity(loosedb::EntityValue::symbol(&name));
        let shard = db.shard_of(id);
        if buckets[shard].len() < 400 {
            buckets[shard].push(name);
        }
        i += 1;
    }
    buckets
}

#[test]
fn writers_on_distinct_shards_race_cross_shard_readers() {
    let db = Arc::new(ShardedDatabase::new(SHARDS).unwrap());
    // A broadcast taxonomy edge plus a seed fact per relationship, so
    // readers' queries are never trivially empty.
    db.insert("LINK-A", "gen", "CONNECTED").unwrap();
    db.insert("HUB", "LINK-A", "MID").unwrap();
    db.insert("MID", "LINK-B", "RIM").unwrap();
    let buckets = names_by_shard(&db);

    let stop = Arc::new(AtomicBool::new(false));
    let writes = Arc::new(AtomicU64::new(0));
    let reads = Arc::new(AtomicU64::new(0));

    crossbeam::thread::scope(|scope| {
        // One writer per shard: each inserts facts sourced only at
        // entities its own shard owns, plus the occasional removal.
        for (shard, names) in buckets.iter().enumerate() {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let writes = Arc::clone(&writes);
            scope.spawn(move |_| {
                let mut inserted = Vec::new();
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let name = &names[i % names.len()];
                    let f = db.insert(name.as_str(), "LINK-A", format!("T{shard}-{i}")).unwrap();
                    inserted.push(f);
                    if i % 7 == 6 {
                        let f = inserted.swap_remove(i % inserted.len());
                        assert!(db.remove(&f).unwrap(), "own insert must be removable");
                    }
                    writes.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        // Readers: cross-shard chain join (gathered through the union
        // view) and a collocated scatter, against fresh snapshots.
        for _ in 0..2 {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            scope.spawn(move |_| {
                let mut last_epochs = vec![0u64; SHARDS];
                while !stop.load(Ordering::Relaxed) {
                    let snap = db.snapshot();
                    let epochs = snap.epochs();
                    for (seen, now) in last_epochs.iter().zip(&epochs) {
                        assert!(now >= seen, "per-shard epochs must be monotone");
                    }
                    last_epochs = epochs;

                    let chain = parse_frozen(
                        "Q(?x, ?z) := exists ?y . (?x, LINK-A, ?y) & (?y, LINK-B, ?z)",
                        snap.interner(),
                    )
                    .unwrap();
                    let views = snap.views();
                    let a =
                        eval_sharded(&chain, &views, snap.interner(), EvalOptions::default(), None)
                            .expect("cross-shard join");
                    assert!(!a.answer.rows.is_empty(), "seed chain HUB->MID->RIM must hold");

                    let collocated =
                        parse_frozen("Q(?x, ?y) := (?x, CONNECTED, ?y)", snap.interner()).unwrap();
                    let b = eval_sharded(
                        &collocated,
                        &views,
                        snap.interner(),
                        EvalOptions::default(),
                        None,
                    )
                    .expect("collocated scatter");
                    // Every LINK-A fact is also CONNECTED via the
                    // broadcast gen edge; the scatter can never invent
                    // rows beyond the snapshot's closure facts.
                    let base: usize =
                        views.iter().map(|v| v.matches(Pattern::ANY).expect("scan").len()).sum();
                    assert!(b.answer.rows.len() <= base);
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    })
    .expect("threads");

    assert!(writes.load(Ordering::Relaxed) > 0, "writers made progress");
    assert!(reads.load(Ordering::Relaxed) > 0, "readers made progress");

    // Quiesced: the union closure must contain every surviving insert
    // exactly once per owning shard, and a session over the final state
    // answers the chain join consistently with a fresh snapshot.
    let mut session = ShardedSession::new(Arc::clone(&db));
    let a1 = session.query("Q(?x, ?z) := exists ?y . (?x, LINK-A, ?y) & (?y, LINK-B, ?z)").unwrap();
    let a2 = session.query("Q(?x, ?z) := exists ?y . (?x, LINK-A, ?y) & (?y, LINK-B, ?z)").unwrap();
    assert_eq!(a1.len(), a2.len());
}

#[test]
fn collocated_scatter_agrees_with_union_view_under_writes() {
    let db = Arc::new(ShardedDatabase::new(SHARDS).unwrap());
    for i in 0..50 {
        db.insert(format!("E{i}"), "REL-A", format!("E{}", (i + 1) % 50)).unwrap();
        db.insert(format!("E{i}"), "REL-B", format!("E{}", (i * 3) % 50)).unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    crossbeam::thread::scope(|scope| {
        {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            scope.spawn(move |_| {
                let mut i = 50usize;
                while !stop.load(Ordering::Relaxed) {
                    db.insert(format!("E{i}"), "REL-A", format!("E{}", i % 50)).unwrap();
                    i += 1;
                }
            });
        }

        for _ in 0..2 {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            scope.spawn(move |_| {
                while !stop.load(Ordering::Relaxed) {
                    // Same snapshot for both paths: the collocated
                    // scatter and the union-view fallback must agree
                    // row for row no matter what the writer is doing.
                    let snap = db.snapshot();
                    let star = parse_frozen(
                        "Q(?x) := exists ?a . exists ?b . (?x, REL-A, ?a) & (?x, REL-B, ?b)",
                        snap.interner(),
                    )
                    .unwrap();
                    let views = snap.views();
                    let scattered =
                        eval_sharded(&star, &views, snap.interner(), EvalOptions::default(), None)
                            .expect("scatter");
                    assert!(scattered.collocated, "star join must take the collocated path");
                    let union = loosedb::query::UnionView::new(&views, snap.interner());
                    let (direct, _) =
                        loosedb::query::plan_and_eval(&star, &union, EvalOptions::default())
                            .expect("union view");
                    assert_eq!(scattered.answer.rows, direct.rows);
                }
            });
        }

        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    })
    .expect("threads");
}
