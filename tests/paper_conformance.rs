//! Paper conformance suite: one test per section of Motro (SIGMOD 1984),
//! each asserting the specific behaviour that section defines, with the
//! paper's own examples wherever it gives one.
//!
//! (The §4.1/§5.2/§6.1 *rendered* outputs are pinned byte-exactly in
//! `tests/paper_golden.rs`; this suite covers the semantics.)

use loosedb::{
    eval, parse, special, Database, EntityValue, Fact, FactView, Pattern, RuleGroup, Session,
};

fn ids(db: &Database, names: &[&str]) -> Vec<loosedb::EntityId> {
    names.iter().map(|n| db.lookup_symbol(n).unwrap_or_else(|| panic!("{n}"))).collect()
}

/// §2.1 — entities and facts: named pairs; the same pair may be related
/// through different relationships (EARNS vs OWES both between JOHN and
/// an amount).
#[test]
fn s2_1_facts_are_named_pairs() {
    let mut db = Database::new();
    db.add("JOHN", "EARNS", 25000i64);
    db.add("JOHN", "OWES", 25000i64);
    assert_eq!(db.base_len(), 2);
    let [john] = ids(&db, &["JOHN"])[..] else { unreachable!() };
    assert_eq!(db.store().count(Pattern::from_source(john)), 2);
}

/// §2.2 — individual vs class relationships: EARN applies to every
/// employee, TOTAL-NUMBER only to the aggregate.
#[test]
fn s2_2_individual_vs_class() {
    let mut db = Database::new();
    db.add("EMPLOYEE", "EARN", "SALARY");
    db.add("EMPLOYEE", "TOTAL-NUMBER", "N180");
    db.add("JOHN", "isa", "EMPLOYEE");
    let total = db.lookup_symbol("TOTAL-NUMBER").unwrap();
    db.declare_class(total);

    let mut session = Session::new(db);
    assert!(session.query("(JOHN, EARN, SALARY)").unwrap().is_true());
    assert!(!session.query("(JOHN, TOTAL-NUMBER, N180)").unwrap().is_true());
}

/// §2.3 — generalization is reflexive and bounded by Δ/∇; membership may
/// nest (an instance can itself have instances — the ISBN example).
#[test]
fn s2_3_generalization_and_membership() {
    let mut db = Database::new();
    db.add("EMPLOYEE", "gen", "PERSON");
    db.add("ISBN-914894", "isa", "BOOK");
    db.add("ISBN-914894-COPY1", "isa", "ISBN-914894");
    db.add("ISBN-914894-COPY2", "isa", "ISBN-914894");

    let mut session = Session::new(db);
    // Reflexivity and hierarchy bounds are virtually true.
    assert!(session.query("(EMPLOYEE, gen, EMPLOYEE)").unwrap().is_true());
    assert!(session.query("(EMPLOYEE, gen, TOP)").unwrap().is_true());
    assert!(session.query("(BOT, gen, EMPLOYEE)").unwrap().is_true());
    // Nested instances both hold.
    assert!(session.query("(ISBN-914894, isa, BOOK)").unwrap().is_true());
    assert!(session.query("(ISBN-914894-COPY1, isa, ISBN-914894)").unwrap().is_true());
}

/// §2.4 — the paper's first inference rule: (x, ∈, EMPLOYEE) ⇒
/// (x, EARN, SALARY), applied to John and Tom.
#[test]
fn s2_4_user_inference_rule() {
    let mut db = Database::new();
    let isa = special::ISA;
    let employee = db.entity("EMPLOYEE");
    let earn = db.entity("EARN");
    let salary = db.entity("SALARY");
    let mut b = loosedb::Rule::builder("employees-earn");
    let x = b.var("x");
    db.add_rule(b.when(x, isa, employee).then(x, earn, salary).build().unwrap()).unwrap();
    db.add("JOHN", "isa", "EMPLOYEE");
    db.add("TOM", "isa", "EMPLOYEE");

    let mut session = Session::new(db);
    assert!(session.query("(JOHN, EARN, SALARY)").unwrap().is_true());
    assert!(session.query("(TOM, EARN, SALARY)").unwrap().is_true());
}

/// §2.5 — integrity constraints are the same mechanism as inference: the
/// paper's (x, ∈, AGE) ⇒ (x, >, 0) rule, enforced transactionally.
#[test]
fn s2_5_integrity_is_inference() {
    let mut db = Database::new();
    let age = db.entity("AGE");
    let zero = db.entity(0i64);
    let mut b = loosedb::Rule::builder("age-positive");
    let x = b.var("x");
    db.add_rule(
        b.constraint().when(x, special::ISA, age).then(x, special::GT, zero).build().unwrap(),
    )
    .unwrap();
    db.try_add(30i64, "isa", "AGE").unwrap();
    assert!(db.try_add(-5i64, "isa", "AGE").is_err());
    assert!(db.is_consistent().unwrap());
}

/// §2.6 — anything goes: replication, inconsistency, many-to-many; and
/// complex facts are reified (the paper's E123 enrollment).
#[test]
fn s2_6_loose_structure_and_reification() {
    let mut db = Database::new();
    // "even inconsistencies and replications are allowed"
    db.add("JOHN", "EARN", 25000i64);
    db.add("JOHN", "EARN", 40000i64);
    db.add("JOHN", "INCOME", 40000i64);
    // The E123 reification.
    db.add("E123", "ENROLL-STUDENT", "TOM");
    db.add("E123", "ENROLL-COURSE", "CS100");
    db.add("E123", "ENROLL-GRADE", "A");

    let mut session = Session::new(db);
    let answer = session
        .query(
            "Q(?c, ?g) := exists ?e . (?e, ENROLL-STUDENT, TOM) \
             & (?e, ENROLL-COURSE, ?c) & (?e, ENROLL-GRADE, ?g)",
        )
        .unwrap();
    assert!(answer.succeeded());
}

/// §2.7 — the query language: the paper's self-citing-authors query and
/// the negation-free complement (≠).
#[test]
fn s2_7_query_language() {
    let mut db = Database::new();
    db.add("B1", "isa", "BOOK");
    db.add("B1", "CITES", "B1");
    db.add("B1", "AUTHOR", "JOHN");
    db.add("B2", "isa", "BOOK");
    db.add("B2", "AUTHOR", "MARY");
    db.add("JOHN", "isa", "PERSON");
    db.add("MARY", "isa", "PERSON");

    let mut session = Session::new(db);
    let self_citing = session
        .query(
            "Q(?y) := exists ?x . (?x, isa, BOOK) & (?y, isa, PERSON) \
             & (?x, CITES, ?x) & (?x, AUTHOR, ?y)",
        )
        .unwrap();
    assert_eq!(self_citing.len(), 1);
    // The negation-free complement needs a class guard on ?y: membership
    // inference lifts (B1, AUTHOR, JOHN) to (B1, AUTHOR, PERSON) — "B1's
    // author is some person" — and PERSON ≠ JOHN would admit B1 too.
    let not_john = session
        .query(
            "Q(?x) := exists ?y . (?x, isa, BOOK) & (?x, AUTHOR, ?y) \
             & (?y, isa, PERSON) & (?y, !=, JOHN)",
        )
        .unwrap();
    assert_eq!(not_john.len(), 1);
    // Propositions (§2.7's closed formulas).
    assert!(!session.query("(JOHN, LIKES, FELIX) & (FELIX, LIKES, JOHN)").unwrap().is_true());
}

/// §3.1 — the three generalization inferences, with the paper's examples.
#[test]
fn s3_1_generalization_rules() {
    let mut db = Database::new();
    db.add("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
    db.add("MANAGER", "gen", "EMPLOYEE");
    db.add("EMPLOYEE", "EARNS", "SALARY");
    db.add("SALARY", "gen", "COMPENSATION");
    db.add("JOHN", "WORKS-FOR", "SHIPPING");
    db.add("WORKS-FOR", "gen", "IS-PAID-BY");

    let mut session = Session::new(db);
    assert!(session.query("(MANAGER, WORKS-FOR, DEPARTMENT)").unwrap().is_true());
    assert!(session.query("(EMPLOYEE, EARNS, COMPENSATION)").unwrap().is_true());
    assert!(session.query("(JOHN, IS-PAID-BY, SHIPPING)").unwrap().is_true());
}

/// §3.2 — membership inference, with the paper's examples.
#[test]
fn s3_2_membership_rules() {
    let mut db = Database::new();
    db.add("JOHN", "isa", "EMPLOYEE");
    db.add("EMPLOYEE", "WORKS-FOR", "DEPARTMENT");
    db.add("TOM", "WORKS-FOR", "SHIPPING");
    db.add("SHIPPING", "isa", "DEPARTMENT");
    db.add("EMPLOYEE", "gen", "PERSON");

    let mut session = Session::new(db);
    assert!(session.query("(JOHN, WORKS-FOR, DEPARTMENT)").unwrap().is_true());
    assert!(session.query("(TOM, WORKS-FOR, DEPARTMENT)").unwrap().is_true());
    // "an instance of every more general entity"
    assert!(session.query("(JOHN, isa, PERSON)").unwrap().is_true());
}

/// §3.3 — synonyms: substitution, symmetry, and the WAGE/PAY transitivity
/// example.
#[test]
fn s3_3_synonyms() {
    let mut db = Database::new();
    db.add("JOHN", "EARNS", 25000i64);
    db.add("JOHN", "syn", "JOHNNY");
    db.add("SALARY", "syn", "WAGE");
    db.add("SALARY", "syn", "PAY");

    let mut session = Session::new(db);
    assert!(session.query("(JOHNNY, EARNS, 25000)").unwrap().is_true());
    assert!(session.query("(JOHNNY, syn, JOHN)").unwrap().is_true());
    assert!(session.query("(WAGE, syn, PAY)").unwrap().is_true());
    // The definition: synonyms are mutually ≺.
    assert!(session.query("(JOHN, gen, JOHNNY) & (JOHNNY, gen, JOHN)").unwrap().is_true());
}

/// §3.4 — inversion: the TEACHES/TAUGHT-BY pair, both directions.
#[test]
fn s3_4_inversion() {
    let mut db = Database::new();
    db.add("INSTRUCTOR", "TEACHES", "COURSE");
    db.add("TEACHES", "inv", "TAUGHT-BY");
    db.add("CS100", "TAUGHT-BY", "HARRY");

    let mut session = Session::new(db);
    assert!(session.query("(COURSE, TAUGHT-BY, INSTRUCTOR)").unwrap().is_true());
    // "inversion facts are guaranteed to come in pairs"
    assert!(session.query("(TAUGHT-BY, inv, TEACHES)").unwrap().is_true());
    assert!(session.query("(HARRY, TEACHES, CS100)").unwrap().is_true());
}

/// §3.5 — contradiction facts: (LOVES, ⊥, HATES).
#[test]
fn s3_5_contradictions() {
    let mut db = Database::new();
    db.add("LOVES", "contra", "HATES");
    db.add("JOHN", "LOVES", "MARY");
    assert!(db.is_consistent().unwrap());
    db.add("JOHN", "HATES", "MARY");
    assert!(!db.is_consistent().unwrap());
}

/// §3.6 — mathematical facts: the paper's salary query, plus derived
/// comparators and identity over all entities.
#[test]
fn s3_6_mathematical_facts() {
    let mut db = Database::new();
    db.add("JOHN", "isa", "EMPLOYEE");
    db.add("JOHN", "EARNS", 25000i64);

    let mut session = Session::new(db);
    let q = "Q(?z) := exists ?y . (?z, isa, EMPLOYEE) & (?z, EARNS, ?y) & (?y, >, 20000)";
    let answer = session.query(q).unwrap();
    assert_eq!(answer.len(), 1);
    // Derived comparators and identity.
    assert!(session.query("(25000, >=, 25000)").unwrap().is_true());
    assert!(session.query("(JOHN, =, JOHN)").unwrap().is_true());
    assert!(session.query("(JOHN, !=, EMPLOYEE)").unwrap().is_true());
    // Math facts are never materialized.
    let closure_facts = session.db_mut().closure().unwrap().len();
    assert_eq!(closure_facts, 2);
}

/// §3.7 — composition: the TOM/CS100/HARRY example, with the cyclic
/// guard (JOHN loves MARY loves JOHN produces nothing).
#[test]
fn s3_7_composition() {
    let mut db = Database::new();
    db.limit(2);
    db.add("TOM", "ENROLLED-IN", "CS100");
    db.add("CS100", "TAUGHT-BY", "HARRY");
    db.add("JOHN", "LOVES", "MARY");
    db.add("MARY", "LOVES", "JOHN");

    let [tom, harry] = ids(&db, &["TOM", "HARRY"])[..] else { unreachable!() };
    let view = db.view().unwrap();
    let composed = view.matches(Pattern::new(Some(tom), None, Some(harry))).unwrap();
    assert_eq!(composed.len(), 1);
    assert_eq!(view.interner().display(composed[0].r), "ENROLLED-IN.CS100.TAUGHT-BY");
    let [john, mary] = ids(
        &{
            let mut d = Database::new();
            d.add("JOHN", "x", "y");
            d.add("MARY", "x", "y");
            d
        },
        &["JOHN", "MARY"],
    )[..] else {
        unreachable!()
    };
    let _ = (john, mary);
    // No composed fact between the two lovers (guard s ≠ u).
    let john = view.interner().lookup_symbol("JOHN").unwrap();
    let mary = view.interner().lookup_symbol("MARY").unwrap();
    let loops = view
        .matches(Pattern::new(Some(john), None, Some(mary)))
        .unwrap()
        .into_iter()
        .filter(|f| view.interner().resolve(f.r).as_path().is_some())
        .count();
    assert_eq!(loops, 0);
}

/// §4.1 — navigation interleaves with standard querying: "a complex
/// query ... may then be followed by browsing".
#[test]
fn s4_1_navigation_interleaving() {
    let mut session = Session::new(loosedb::datagen::music_world());
    // Standard query finds the person who likes Mozart...
    let who = session.query("Q(?p) := (?p, LIKES, MOZART) & (?p, isa, PERSON)").unwrap();
    let person = who.single_column().unwrap()[0];
    let name = session.db().display(person);
    assert_eq!(name, "JOHN");
    // ...and the answer seeds navigation.
    let table = session.focus(&name).unwrap();
    assert!(table.to_string().contains("FAVORITE-MUSIC"));
}

/// §5.1 — broadness: "if a query succeeds, all broader queries will
/// succeed too" (spot check; the property test covers random databases).
#[test]
fn s5_1_broadness_spot_check() {
    let mut db = Database::new();
    db.add("GRADUATE-OF", "gen", "ATTENDED");
    db.add("Q1", "isa", "QUARTERBACK");
    db.add("Q1", "GRADUATE-OF", "USC");

    let mut session = Session::new(db);
    let narrow = "Q(?x) := (?x, isa, QUARTERBACK) & (?x, GRADUATE-OF, USC)";
    let broad = "Q(?x) := (?x, isa, QUARTERBACK) & (?x, ATTENDED, USC)";
    let narrow_rows = session.query(narrow).unwrap().rows;
    let broad_rows = session.query(broad).unwrap().rows;
    assert!(narrow_rows.is_subset(&broad_rows));
    assert!(!narrow_rows.is_empty());
}

/// §5.2 — the full retraction protocol (menu golden-tested elsewhere);
/// here: the critical-failure notion — all minimal retractions succeed.
#[test]
fn s5_2_critical_failure() {
    let mut db = Database::new();
    // One broadenable constant per conjunct; both broadenings succeed.
    db.add("LOVE", "gen", "LIKE");
    db.add("FREE", "gen", "CHEAP");
    // Give STUDENT a child and COSTS a parentless rel so the other
    // retractions also succeed:
    db.add("FRESHMAN", "gen", "STUDENT");
    db.add("FRESHMAN", "LOVE", "SWAG");
    db.add("SWAG", "COSTS", "FREE");
    db.add("STUDENT", "LIKE", "LIBRARY");
    db.add("LIBRARY", "COSTS", "FREE");
    db.add("STUDENT", "LOVE", "COFFEE");
    db.add("COFFEE", "COSTS", "CHEAP");
    // Let the (z, Δ, FREE) degenerate retraction succeed too: something
    // students love is related to FREE in *some* way.
    db.add("COFFEE", "ADVERTISED-AS", "FREE");

    let mut session = Session::new(db);
    let report = session.probe("Q(?z) := (STUDENT, LOVE, ?z) & (?z, COSTS, FREE)").unwrap();
    match &report.outcome {
        loosedb::ProbeOutcome::RetractionsSucceeded { wave: 0 } => {
            // (z, Δ, FREE) succeeds too (facts mention FREE), so all five
            // minimal retractions succeed: a critical failure.
            assert!(report.critical, "expected critical failure");
        }
        other => panic!("{other:?}"),
    }
}

/// §6.1 — the operators: try, include/exclude, limit, relation, and the
/// definition facility, all through one session.
#[test]
fn s6_1_operator_suite() {
    let mut session = Session::new(loosedb::datagen::relation_world());

    // try(e): start-up information for unfamiliar users.
    let table = session.try_entity("JOHN").unwrap();
    assert!(table.to_string().contains("(JOHN, WORKS-FOR, SHIPPING)"));

    // relation(...): the structured view.
    let table =
        session.relation("EMPLOYEE", &[("WORKS-FOR", "DEPARTMENT"), ("EARNS", "SALARY")]).unwrap();
    assert_eq!(table.rows.len(), 3);

    // include/exclude/limit.
    session.db_mut().exclude(RuleGroup::Membership);
    assert!(!session.db_mut().config().is_enabled(RuleGroup::Membership));
    session.db_mut().include(RuleGroup::Membership);
    session.db_mut().limit(2);
    assert_eq!(session.db_mut().config().composition_limit, 2);

    // Definitions.
    session.define("works-in", 1, "Q(?x) := (?x, WORKS-FOR, $1)").unwrap();
    let answer = session.query("works-in(SHIPPING)").unwrap();
    assert_eq!(answer.len(), 1);
}

/// §6.1 — dynamic rule editing around a retrieval: switch composition on
/// for one query, off again afterwards, exactly the paper's usage.
#[test]
fn s6_1_composition_switched_around_a_retrieval() {
    let mut db = Database::new();
    db.add("JOHN", "FAVORITE-MUSIC", "PC9");
    db.add("PC9", "COMPOSED-BY", "MOZART");
    let [john, mozart] = ids(&db, &["JOHN", "MOZART"])[..] else { unreachable!() };

    let count_links = |db: &mut Database| {
        let view = db.view().unwrap();
        view.matches(Pattern::new(Some(john), None, Some(mozart))).unwrap().len()
    };
    assert_eq!(count_links(&mut db), 0);
    db.limit(2); // include(composition)
    assert_eq!(count_links(&mut db), 1);
    db.exclude(RuleGroup::Composition);
    assert_eq!(count_links(&mut db), 0);
}

/// Numbers are ordinary entities (§3.6: "$25000" is the number 25000) and
/// floats work alongside integers.
#[test]
fn numbers_are_entities() {
    let mut db = Database::new();
    db.add("STUDENT-1", "GPA", EntityValue::float(2.5));
    db.add("STUDENT-2", "GPA", EntityValue::float(3.7));
    let mut session = Session::new(db);
    let under = session.query("Q(?s) := exists ?g . (?s, GPA, ?g) & (?g, <, 2.6)").unwrap();
    assert_eq!(under.len(), 1);
    // Mixed int/float comparison.
    assert!(session.query("(3.7, >, 3)").unwrap().is_true());
}

/// The closure never invents facts out of thin air: an empty database
/// has an empty closure and every query fails.
#[test]
fn empty_database_sanity() {
    let mut db = Database::new();
    assert_eq!(db.closure().unwrap().len(), 0);
    assert!(db.is_consistent().unwrap());
    let q = parse("(?x, ?r, ?y)", db.store_interner_mut()).unwrap();
    let view = db.view().unwrap();
    assert!(eval(&q, &view).unwrap().is_empty());
    // Virtual facts still answer: reflexivity, bounds, math.
    assert!(view.holds(&Fact::new(special::GEN, special::GEN, special::GEN)));
}
