//! Cross-crate integration tests: end-to-end flows through the public
//! facade, spanning storage, inference, queries, browsing and persistence.

use loosedb::datagen::{company, university, CompanyConfig, UniversityConfig};
use loosedb::{special, Database, EntityValue, Fact, FactView, ProbeOutcome, RuleGroup, Session};

/// The full life of a database: build, infer, query, browse, persist,
/// reload, keep working.
#[test]
fn end_to_end_lifecycle() {
    let mut db = Database::new();

    // Build a small world, one fact at a time (§2).
    db.add("TOM", "isa", "STUDENT");
    db.add("TOM", "ENROLLED-IN", "CS100");
    db.add("CS100", "TAUGHT-BY", "HARRY");
    db.add("TAUGHT-BY", "inv", "TEACHES");
    db.add("STUDENT", "gen", "PERSON");
    db.add("ENROLLED-IN", "gen", "ATTENDS");

    // Queries see inference: Tom attends CS100 (G2) and Harry teaches it
    // (inversion).
    let mut session = Session::new(db);
    assert!(session.query("(TOM, ATTENDS, CS100)").unwrap().is_true());
    assert!(session.query("(HARRY, TEACHES, CS100)").unwrap().is_true());

    // Browse: Tom's neighborhood shows both stored and inferred facts.
    let table = session.focus("TOM").unwrap();
    let rendered = table.to_string();
    assert!(rendered.contains("ATTENDS"));
    assert!(rendered.contains("CS100"));

    // Persist and reload.
    let dir = std::env::temp_dir().join(format!("loosedb-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("world.lsdb");
    session.db().save(&path).unwrap();
    let reloaded = Database::load(&path).unwrap();
    assert_eq!(reloaded.base_len(), session.db().base_len());

    // The reloaded database answers the same queries.
    let mut session2 = Session::new(reloaded);
    assert!(session2.query("(TOM, ATTENDS, CS100)").unwrap().is_true());
    std::fs::remove_dir_all(&dir).ok();
}

/// Snapshot + log replay: the paper's dynamic database (§6.1 "a database
/// is a dynamic set of facts") recovered from a checkpoint plus a tail of
/// operations.
#[test]
fn snapshot_plus_log_recovery() {
    let mut store = loosedb::FactStore::new();
    store.add("JOHN", "EARNS", 25000i64);
    store.add("JOHN", "isa", "EMPLOYEE");
    let snapshot = loosedb::store::snapshot::encode(&store);

    // Operations after the checkpoint.
    let mut log = loosedb::FactLog::new();
    log.insert("MARY", "isa", "EMPLOYEE");
    log.remove("JOHN", "EARNS", 25000i64);
    log.insert("JOHN", "EARNS", 30000i64);

    // Recover: checkpoint + tail.
    let mut recovered = loosedb::store::snapshot::decode(snapshot).unwrap();
    loosedb::store::log::replay(log.bytes(), &mut recovered).unwrap();
    assert_eq!(recovered.len(), 3);

    let mut session = Session::new(Database::from_store(recovered));
    assert!(session.query("(MARY, isa, EMPLOYEE)").unwrap().is_true());
    assert!(session.query("(JOHN, EARNS, 30000)").unwrap().is_true());
    assert!(!session.query("(JOHN, EARNS, 25000)").unwrap().is_true());
}

/// The university world end to end: queries, views, probing, explanation.
#[test]
fn university_flow() {
    let db = university(&UniversityConfig {
        students: 20,
        courses: 6,
        instructors: 3,
        enrollments_per_student: 2,
        seed: 3,
    });
    let mut session = Session::new(db);

    // Every course is taught; every reified enrollment reassembles.
    let teachers = session
        .query("Q(?c, ?i) := (?c, TAUGHT-BY, ?i) & (?i, isa, INSTRUCTOR) & (?c, isa, COURSE)")
        .unwrap();
    assert_eq!(teachers.len(), 6);

    // Probing with GRADUATE-OF ≺ ATTENDED: a student who attended but did
    // not graduate is found through retraction.
    session.db_mut().add("STU-1", "ATTENDED", "STATE-COLLEGE");
    let report = session.probe("(STU-1, GRADUATE-OF, STATE-COLLEGE)").unwrap();
    match report.outcome {
        ProbeOutcome::RetractionsSucceeded { wave } => assert_eq!(wave, 0),
        ref other => panic!("expected retraction success, got {other:?}"),
    }

    // relation() over enrollments matches a hand-written query.
    let table = session
        .relation("ENROLLMENT", &[("ENROLL-STUDENT", "STUDENT"), ("ENROLL-GRADE", "GRADE")])
        .unwrap();
    assert_eq!(table.rows.len(), 40);
    let by_query = session
        .query(
            "Q(?e, ?s, ?g) := (?e, ENROLL-STUDENT, ?s) & (?e, ENROLL-GRADE, ?g) \
             & (?s, isa, STUDENT) & (?g, isa, GRADE) & (?e, isa, ENROLLMENT)",
        )
        .unwrap();
    assert_eq!(by_query.len(), 40);
}

/// The company world: both §2.5 constraints actively guard updates.
#[test]
fn company_integrity_flow() {
    let mut db = company(&CompanyConfig { employees: 30, ..Default::default() });
    assert!(db.is_consistent().unwrap());

    // Good updates pass.
    db.try_add("EMP-1", "LOVES", "EMP-2").unwrap();
    // Bad updates fail atomically and leave the database consistent.
    assert!(db.try_add("EMP-1", "HATES", "EMP-2").is_err());
    assert!(db.try_add(-1i64, "isa", "AGE").is_err());
    assert!(db.is_consistent().unwrap());

    // Rule toggling (§6.1): excluding user rules waives the constraints.
    db.exclude(RuleGroup::UserRules);
    db.try_add(-1i64, "isa", "AGE").unwrap();
    assert!(db.is_consistent().unwrap()); // no constraint, no violation
    db.include(RuleGroup::UserRules);
    assert!(!db.is_consistent().unwrap()); // the bad age is now caught
    let age_entity = db.lookup(&EntityValue::Int(-1)).unwrap();
    db.remove(&Fact::new(age_entity, special::ISA, db.lookup_symbol("AGE").unwrap()));
    assert!(db.is_consistent().unwrap());
}

/// Composition through the full stack: limit(n) changes what navigation
/// and queries can see (§6.1).
#[test]
fn composition_limits_through_stack() {
    let mut db = Database::new();
    db.add("JOHN", "FAVORITE-MUSIC", "PC9");
    db.add("PC9", "COMPOSED-BY", "MOZART");
    db.add("MOZART", "BORN-IN", "SALZBURG");

    // limit(1): no composition facts materialize.
    let closure = db.closure().unwrap();
    assert_eq!(closure.stats().composition_facts, 0);

    // limit(2): single compositions.
    db.limit(2);
    let closure = db.closure().unwrap();
    assert_eq!(closure.stats().composition_facts, 2);

    // limit(3): the full chain JOHN→SALZBURG appears, queryable as a
    // template with a variable in the relationship position.
    db.limit(3);
    let john = db.lookup_symbol("JOHN").unwrap();
    let salzburg = db.lookup_symbol("SALZBURG").unwrap();
    let view = db.view().unwrap();
    let links = view.matches(loosedb::Pattern::new(Some(john), None, Some(salzburg))).unwrap();
    assert_eq!(links.len(), 1);
    let name = view.interner().display(links[0].r);
    assert_eq!(name, "FAVORITE-MUSIC.PC9.COMPOSED-BY.MOZART.BORN-IN");
}

/// Session operators: definitions compose with probing and navigation.
#[test]
fn session_operator_suite() {
    let mut session = Session::new(loosedb::datagen::music_world());

    session.define("likers-of", 1, "Q(?x) := (?x, LIKES, $1)").unwrap();
    let answer = session.query("likers-of(MOZART)").unwrap();
    assert_eq!(answer.len(), 1); // JOHN

    // try(e) works for entities in any position.
    let table = session.try_entity("FAVORITE-MUSIC").unwrap();
    assert!(table.to_string().contains("as relationship"));

    // History: focus twice and walk back.
    session.focus("JOHN").unwrap();
    session.focus("MOZART").unwrap();
    assert_eq!(session.history().len(), 2);
    session.back().unwrap();
    assert_eq!(session.history().len(), 1);
}

/// Violations render with names, not raw ids.
#[test]
fn violation_display() {
    let mut db = Database::new();
    db.add("LOVES", "contra", "HATES");
    db.add("ROMEO", "LOVES", "TYBALT");
    db.add("ROMEO", "HATES", "TYBALT");
    let violations = db.validate().unwrap().to_vec();
    assert_eq!(violations.len(), 1);
    let text = db.display_violation(&violations[0]);
    assert!(text.contains("ROMEO"), "{text}");
    assert!(text.contains("LOVES") && text.contains("HATES"), "{text}");
}

/// E5's "pure target climb" claim: with the datum at the taxonomy root,
/// the query succeeds only at the root — the target position needs
/// exactly `depth` broadening steps — while full probing finds the
/// degenerate (∇, Δ, x) escape after three steps.
#[test]
fn probe_pure_target_climb() {
    use loosedb::datagen::{taxonomy, TaxonomyConfig};
    let mut t = taxonomy(&TaxonomyConfig { depth: 4, branching: 2, dag_probability: 0.0, seed: 5 });
    let root_name = t.db.display(t.root());
    t.db.add("JOHN", "WANTS", root_name.as_str());

    // Per level: only the root query succeeds.
    for (level, entities) in t.levels.clone().iter().enumerate() {
        let name = t.db.display(entities[0]);
        let src = format!("(JOHN, WANTS, {name})");
        let q = loosedb::parse(&src, t.db.store_interner_mut()).unwrap();
        let view = t.db.view().unwrap();
        let answer = loosedb::eval(&q, &view).unwrap();
        assert_eq!(answer.is_true(), level == 0, "level {level}");
    }

    // Full probing from the leaf hits the Δ/∇ escape at wave 3.
    let leaf_name = t.db.display(t.leaves()[0]);
    let src = format!("(JOHN, WANTS, {leaf_name})");
    let q = loosedb::parse(&src, t.db.store_interner_mut()).unwrap();
    let view = t.db.view().unwrap();
    let report = loosedb::probe(&q, &view, &loosedb::ProbeOptions::default());
    assert_eq!(report.waves.len(), 3);
    match report.outcome {
        ProbeOutcome::RetractionsSucceeded { wave } => assert_eq!(wave, 2),
        ref other => panic!("{other:?}"),
    }
}

/// Full-database persistence: facts, rules, kinds and configuration all
/// round-trip, so integrity constraints survive a restart.
#[test]
fn full_image_roundtrip_keeps_constraints() {
    let dir = std::env::temp_dir().join(format!("loosedb-lsdf-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("company.lsdf");

    let db = company(&CompanyConfig { employees: 15, ..Default::default() });
    db.save_full(&path).unwrap();

    let mut restored = Database::load_full(&path).unwrap();
    assert_eq!(restored.rules().len(), 2);
    assert!(restored.is_consistent().unwrap());
    // The age constraint still guards transactional updates.
    assert!(restored.try_add(-9i64, "isa", "AGE").is_err());
    // And the contradiction fact still blocks love/hate pairs.
    restored.try_add("EMP-1", "LOVES", "EMP-2").unwrap();
    assert!(restored.try_add("EMP-1", "HATES", "EMP-2").is_err());
    std::fs::remove_dir_all(&dir).ok();
}
