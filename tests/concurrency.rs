//! Concurrency tests: a shared database behind `parking_lot::RwLock`,
//! read by many browsing threads while writers apply checked updates.
//!
//! The `Database` type is deliberately single-writer (closure refresh
//! needs `&mut self`); the supported concurrent pattern is: refresh under
//! the write lock, then share read guards — exactly what these tests
//! exercise with `crossbeam::scope`.

use parking_lot::RwLock;

use loosedb::datagen::{company, university, CompanyConfig, UniversityConfig};
use loosedb::{Database, Pattern, Session};

#[test]
fn parallel_readers_over_refreshed_database() {
    let mut db = university(&UniversityConfig {
        students: 40,
        courses: 10,
        instructors: 5,
        enrollments_per_student: 3,
        seed: 9,
    });
    db.refresh().expect("closure");
    let shared = RwLock::new(db);

    crossbeam::thread::scope(|scope| {
        for worker in 0..8 {
            let shared = &shared;
            scope.spawn(move |_| {
                // Each worker evaluates its query twice under short write
                // locks (the closure cache is warm, so `view()` is a
                // cheap reborrow, not a recomputation); results must be
                // stable across threads and iterations.
                let src = format!("Q(?e) := (?e, ENROLL-STUDENT, STU-{})", worker % 10);
                let counts: Vec<usize> = (0..2)
                    .map(|_| {
                        let mut guard = shared.write();
                        let q = loosedb::parse(&src, guard.store_interner_mut()).unwrap();
                        let view = guard.view().unwrap();
                        loosedb::eval(&q, &view).unwrap().len()
                    })
                    .collect();
                assert_eq!(counts[0], counts[1]);
                assert!(counts[0] >= 1, "student {} has enrollments", worker % 10);
            });
        }
    })
    .expect("threads");
}

#[test]
fn interleaved_writers_preserve_integrity() {
    let db = company(&CompanyConfig { employees: 20, ..Default::default() });
    let shared = RwLock::new(db);

    crossbeam::thread::scope(|scope| {
        // Writers race to add LOVES/HATES pairs; the contradiction fact
        // (LOVES, ⊥, HATES) must keep at most one of each pair.
        for i in 0..6 {
            let shared = &shared;
            scope.spawn(move |_| {
                let a = format!("EMP-{}", i % 5);
                let b = format!("EMP-{}", (i + 7) % 20);
                let mut guard = shared.write();
                let rel = if i % 2 == 0 { "LOVES" } else { "HATES" };
                // try_add may fail if the opposite was added first —
                // either way the database stays consistent.
                let _ = guard.try_add(a.as_str(), rel, b.as_str());
            });
        }
    })
    .expect("threads");

    let mut db = shared.into_inner();
    assert!(db.is_consistent().expect("closure"));
}

#[test]
fn store_snapshot_readable_while_database_evolves() {
    // Snapshots are value types: encode under the lock, decode and query
    // on another thread while the original keeps changing.
    let mut db = Database::new();
    for i in 0..100 {
        db.add(format!("E{i}"), "LINKS", format!("E{}", (i + 1) % 100));
    }
    let snapshot = loosedb::store::snapshot::encode(db.store());

    crossbeam::thread::scope(|scope| {
        let reader = scope.spawn(move |_| {
            let restored = loosedb::store::snapshot::decode(snapshot).unwrap();
            assert_eq!(restored.len(), 100);
            let e0 = restored.lookup_symbol("E0").unwrap();
            assert_eq!(restored.count(Pattern::from_source(e0)), 1);
        });
        for i in 0..50 {
            db.add(format!("NEW-{i}"), "LINKS", "E0");
        }
        reader.join().unwrap();
    })
    .expect("threads");
    assert_eq!(db.base_len(), 150);
}

#[test]
fn sessions_are_independent() {
    // Two sessions over clones of the same store diverge independently.
    let base = loosedb::datagen::music_world();
    let snapshot = loosedb::store::snapshot::encode(base.store());
    let mut a = Session::new(Database::from_store(
        loosedb::store::snapshot::decode(snapshot.clone()).unwrap(),
    ));
    let mut b =
        Session::new(Database::from_store(loosedb::store::snapshot::decode(snapshot).unwrap()));

    a.db_mut().add("JOHN", "LIKES", "BRAHMS");
    let a_likes = a.query("(JOHN, LIKES, ?x)").unwrap().len();
    let b_likes = b.query("(JOHN, LIKES, ?x)").unwrap().len();
    assert_eq!(a_likes, b_likes + 1);
}
