//! Concurrency tests: a shared database behind `parking_lot::RwLock`,
//! read by many browsing threads while writers apply checked updates.
//!
//! The `Database` type is deliberately single-writer (closure refresh
//! needs `&mut self`); the supported concurrent pattern is: refresh under
//! the write lock, then share read guards — exactly what these tests
//! exercise with `crossbeam::scope`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use loosedb::datagen::{company, university, CompanyConfig, UniversityConfig};
use loosedb::{Database, FactView, Pattern, Session, SharedDatabase, SharedSession};

#[test]
fn parallel_readers_over_refreshed_database() {
    let mut db = university(&UniversityConfig {
        students: 40,
        courses: 10,
        instructors: 5,
        enrollments_per_student: 3,
        seed: 9,
    });
    db.refresh().expect("closure");
    let shared = RwLock::new(db);

    crossbeam::thread::scope(|scope| {
        for worker in 0..8 {
            let shared = &shared;
            scope.spawn(move |_| {
                // Each worker evaluates its query twice under short write
                // locks (the closure cache is warm, so `view()` is a
                // cheap reborrow, not a recomputation); results must be
                // stable across threads and iterations.
                let src = format!("Q(?e) := (?e, ENROLL-STUDENT, STU-{})", worker % 10);
                let counts: Vec<usize> = (0..2)
                    .map(|_| {
                        let mut guard = shared.write();
                        let q = loosedb::parse(&src, guard.store_interner_mut()).unwrap();
                        let view = guard.view().unwrap();
                        loosedb::eval(&q, &view).unwrap().len()
                    })
                    .collect();
                assert_eq!(counts[0], counts[1]);
                assert!(counts[0] >= 1, "student {} has enrollments", worker % 10);
            });
        }
    })
    .expect("threads");
}

#[test]
fn interleaved_writers_preserve_integrity() {
    let db = company(&CompanyConfig { employees: 20, ..Default::default() });
    let shared = RwLock::new(db);

    crossbeam::thread::scope(|scope| {
        // Writers race to add LOVES/HATES pairs; the contradiction fact
        // (LOVES, ⊥, HATES) must keep at most one of each pair.
        for i in 0..6 {
            let shared = &shared;
            scope.spawn(move |_| {
                let a = format!("EMP-{}", i % 5);
                let b = format!("EMP-{}", (i + 7) % 20);
                let mut guard = shared.write();
                let rel = if i % 2 == 0 { "LOVES" } else { "HATES" };
                // try_add may fail if the opposite was added first —
                // either way the database stays consistent.
                let _ = guard.try_add(a.as_str(), rel, b.as_str());
            });
        }
    })
    .expect("threads");

    let mut db = shared.into_inner();
    assert!(db.is_consistent().expect("closure"));
}

#[test]
fn store_snapshot_readable_while_database_evolves() {
    // Snapshots are value types: encode under the lock, decode and query
    // on another thread while the original keeps changing.
    let mut db = Database::new();
    for i in 0..100 {
        db.add(format!("E{i}"), "LINKS", format!("E{}", (i + 1) % 100));
    }
    let snapshot = loosedb::store::snapshot::encode(db.store());

    crossbeam::thread::scope(|scope| {
        let reader = scope.spawn(move |_| {
            let restored = loosedb::store::snapshot::decode(snapshot).unwrap();
            assert_eq!(restored.len(), 100);
            let e0 = restored.lookup_symbol("E0").unwrap();
            assert_eq!(restored.count(Pattern::from_source(e0)), 1);
        });
        for i in 0..50 {
            db.add(format!("NEW-{i}"), "LINKS", "E0");
        }
        reader.join().unwrap();
    })
    .expect("threads");
    assert_eq!(db.base_len(), 150);
}

/// Satellite stress test (run it in `--release` so it actually races):
/// readers iterate navigation tables and queries through `SharedSession`s
/// while a writer churns inserts. Every reader must observe a single
/// consistent generation per operation — each published closure contains
/// the membership-inference consequence of every base fact it contains —
/// and epochs must only move forward.
#[test]
fn shared_database_readers_observe_consistent_generations() {
    let mut db = Database::new();
    db.add("DEPT-SEED", "isa", "DEPARTMENT");
    db.add("DEPARTMENT", "HAS", "BUDGET");
    let shared = Arc::new(SharedDatabase::new(db).expect("closure"));
    let stop = Arc::new(AtomicBool::new(false));

    crossbeam::thread::scope(|scope| {
        for _reader in 0..4 {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            scope.spawn(move |_| {
                let mut session = SharedSession::new(Arc::clone(&shared));
                let mut last_epoch = 0u64;
                let mut ops = 0usize;
                while !stop.load(Ordering::Relaxed) || ops < 50 {
                    let generation = shared.snapshot();
                    // Epochs never go backwards.
                    assert!(generation.epoch() >= last_epoch, "epoch regressed");
                    last_epoch = generation.epoch();

                    // No torn closure: every department the snapshot knows
                    // has the derived (dept, HAS, BUDGET) consequence in
                    // the SAME snapshot. A reader that saw the store of one
                    // generation and the closure of another would fail.
                    let view = generation.view();
                    let isa = generation.lookup_symbol("isa").expect("seeded");
                    let dept = generation.lookup_symbol("DEPARTMENT").expect("seeded");
                    let has = generation.lookup_symbol("HAS").expect("seeded");
                    let budget = generation.lookup_symbol("BUDGET").expect("seeded");
                    let members =
                        view.matches(Pattern::new(None, Some(isa), Some(dept))).expect("matches");
                    assert!(!members.is_empty());
                    for m in &members {
                        assert!(
                            view.holds(&loosedb::Fact::new(m.s, has, budget)),
                            "torn closure: member without derived consequence"
                        );
                    }

                    // The session API sees the same consistency.
                    let table = session.focus("DEPT-SEED").expect("focus");
                    assert!(table.title_cells.contains(&"DEPARTMENT".to_string()));
                    let answer = session.query("(?d, isa, DEPARTMENT)").expect("query");
                    assert!(!answer.is_empty());
                    ops += 1;
                }
            });
        }

        // Writer: churn inserts through the incremental path.
        let epoch_before = shared.epoch();
        for i in 0..60 {
            shared.insert(format!("DEPT-{i}"), "isa", "DEPARTMENT").expect("insert");
            std::thread::yield_now();
        }
        assert_eq!(shared.epoch(), epoch_before + 60, "one publish per insert");
        stop.store(true, Ordering::Relaxed);
    })
    .expect("threads");

    // Final generation contains everything the writer added.
    let generation = shared.snapshot();
    let isa = generation.lookup_symbol("isa").unwrap();
    let dept = generation.lookup_symbol("DEPARTMENT").unwrap();
    let members = generation.view().matches(Pattern::new(None, Some(isa), Some(dept))).unwrap();
    assert_eq!(members.len(), 61);
}

/// Batched writes are atomic: readers either see none or all of an L/R
/// pair added inside one `write(..)` call — never a half-applied batch.
#[test]
fn shared_database_batches_are_atomic() {
    let mut db = Database::new();
    db.add("SEED", "L", "SEED");
    db.add("SEED", "R", "SEED");
    let shared = Arc::new(SharedDatabase::new(db).expect("closure"));
    let stop = Arc::new(AtomicBool::new(false));

    crossbeam::thread::scope(|scope| {
        for _ in 0..3 {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            scope.spawn(move |_| {
                while !stop.load(Ordering::Relaxed) {
                    let generation = shared.snapshot();
                    let view = generation.view();
                    let l = generation.lookup_symbol("L").expect("seeded");
                    let r = generation.lookup_symbol("R").expect("seeded");
                    let lefts = view.matches(Pattern::from_rel(l)).expect("matches");
                    let rights = view.matches(Pattern::from_rel(r)).expect("matches");
                    // The L and R halves of each batch always arrive
                    // together in one generation.
                    assert_eq!(lefts.len(), rights.len(), "torn batch visible");
                }
            });
        }

        for i in 0..40 {
            shared
                .write(|db| {
                    db.add(format!("N-{i}"), "L", "SEED");
                    db.add(format!("N-{i}"), "R", "SEED");
                })
                .expect("write");
        }
        stop.store(true, Ordering::Relaxed);
    })
    .expect("threads");
}

/// Incrementally published generations are byte-for-byte equivalent to a
/// from-scratch closure over the same base facts.
#[test]
fn published_generation_matches_fresh_recompute() {
    let mut db = Database::new();
    db.add("A0", "isa", "KIND");
    db.add("KIND", "OWNS", "THING");
    let shared = SharedDatabase::new(db).expect("closure");
    for i in 1..30 {
        shared.insert(format!("A{i}"), "isa", "KIND").expect("insert");
    }
    let generation = shared.snapshot();

    // Rebuild from the same base facts without any incremental step.
    let mut fresh = Database::from_store(generation.store().clone());
    fresh.refresh().expect("closure");
    let fresh_closure = fresh.closure().expect("closure");
    assert_eq!(generation.closure().len(), fresh_closure.len());
    for f in generation.closure().iter() {
        assert!(fresh_closure.contains(&f), "incremental-only fact {f:?}");
    }
}

#[test]
fn sessions_are_independent() {
    // Two sessions over clones of the same store diverge independently.
    let base = loosedb::datagen::music_world();
    let snapshot = loosedb::store::snapshot::encode(base.store());
    let mut a = Session::new(Database::from_store(
        loosedb::store::snapshot::decode(snapshot.clone()).unwrap(),
    ));
    let mut b =
        Session::new(Database::from_store(loosedb::store::snapshot::decode(snapshot).unwrap()));

    a.db_mut().add("JOHN", "LIKES", "BRAHMS");
    let a_likes = a.query("(JOHN, LIKES, ?x)").unwrap().len();
    let b_likes = b.query("(JOHN, LIKES, ?x)").unwrap().len();
    assert_eq!(a_likes, b_likes + 1);
}
