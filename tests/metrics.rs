//! Metrics-correctness tests: deterministic workloads whose counters are
//! exactly predicted, asserted against the typed
//! [`loosedb::MetricsSnapshot`], plus a multi-threaded test that
//! concurrent sessions never lose increments.

use std::sync::Arc;

use loosedb::obs::CacheSnapshot;
use loosedb::query::{eval_with, EvalOptions, ExecStrategy, ParallelMode};
use loosedb::{Database, DurableDatabase, FactView, SharedDatabase, SharedSession, SyncPolicy};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("loosedb-metrics-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// N durable inserts produce exactly N WAL appends and (under
/// `SyncPolicy::Always`) exactly N fsyncs; a checkpoint is counted once;
/// reopening replays exactly the journaled operations.
#[test]
fn wal_counters_are_exactly_predicted() {
    let dir = temp_dir("wal");
    const N: u64 = 10;
    {
        let mut db = DurableDatabase::open(&dir, SyncPolicy::Always).unwrap();
        for i in 0..N {
            db.add(format!("E{i}"), "isa", "THING").unwrap();
        }
        let snap = db.metrics().snapshot();
        assert_eq!(snap.wal.appends, N);
        assert_eq!(snap.wal.fsyncs, N);
        assert_eq!(snap.wal.fsync_ns.count, N);
        assert!(snap.wal.append_bytes > 0, "{snap:?}");
        assert_eq!(snap.wal.checkpoints, 0);
        assert_eq!(snap.wal.recovered_ops, 0);
    }

    // Reopen: every journaled op is replayed and counted (a fresh
    // `Metrics` belongs to the recovered database).
    {
        let db = DurableDatabase::open(&dir, SyncPolicy::Always).unwrap();
        let snap = db.metrics().snapshot();
        assert_eq!(snap.wal.recovered_ops, N);
        assert_eq!(snap.wal.appends, 0, "recovery replays, it does not journal");
    }

    // A checkpoint rotates the WAL: counted once, and the next reopen has
    // nothing to replay.
    {
        let mut db = DurableDatabase::open(&dir, SyncPolicy::Always).unwrap();
        db.checkpoint().unwrap();
        let snap = db.metrics().snapshot();
        assert_eq!(snap.wal.checkpoints, 1);
        assert_eq!(snap.wal.checkpoint_ns.count, 1);
    }
    {
        let db = DurableDatabase::open(&dir, SyncPolicy::Always).unwrap();
        assert_eq!(db.metrics().snapshot().wal.recovered_ops, 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A fixed single-threaded browsing workload: every counter in the typed
/// snapshot is exactly the number of operations issued.
#[test]
fn browsing_workload_counters_are_exactly_predicted() {
    let mut db = Database::new();
    db.add("ADORES", "gen", "LIKES");
    db.add("JOHN", "isa", "EMPLOYEE");
    db.add("JOHN", "LIKES", "FELIX");
    db.add("JOHN", "EARNS", 25000i64);
    let shared = Arc::new(SharedDatabase::new(db).unwrap());
    let mut s = SharedSession::new(Arc::clone(&shared));

    s.focus("JOHN").unwrap(); // 1 navigation build
    s.query("(JOHN, LIKES, ?x)").unwrap(); // miss → 1 eval
    s.query("(JOHN, LIKES, ?x)").unwrap(); // hit → 0 evals
    s.query("(JOHN, EARNS, ?x)").unwrap(); // miss → 1 eval
    s.probe("(JOHN, ADORES, ?x)").unwrap(); // 1 run, first wave succeeds
    shared.insert("MARY", "LIKES", "FELIX").unwrap(); // 1 publish

    let snap = shared.metrics_snapshot();
    // Engine: the initial closure plus one incremental extension.
    assert_eq!(snap.closure.computes, 1);
    assert_eq!(snap.closure.extends, 1);
    assert_eq!(snap.publish.publishes, 1);
    assert_eq!(snap.publish.epoch, 2);
    assert_eq!(snap.publish.delta_rels.count, 1);
    // Queries: two cache misses evaluated, each returning one row.
    assert_eq!(snap.query.evals, 2);
    assert_eq!(snap.query.eval_ns.count, 2);
    assert_eq!(snap.query.rows.count, 2);
    assert_eq!(snap.query.rows.sum, 2);
    // The query cache as a whole is timing-free: assert it structurally.
    assert_eq!(
        snap.browse.query_cache,
        CacheSnapshot { hits: 1, misses: 2, evictions: 0, carried: 0, len: 2 },
        "2 query misses + 1 hit (probes bypass the answer cache)"
    );
    assert_eq!(snap.browse.nav_builds, 1);
    assert_eq!(snap.browse.nav_build_ns.count, 1);
    // Probe: one run whose single wave tried ADORES→LIKES (a success)
    // and ADORES→Δ broadenings.
    assert_eq!(snap.browse.probe_runs, 1);
    assert_eq!(snap.browse.probe_waves, 1);
    assert_eq!(snap.browse.probe_wave_size.count, 1);
    assert_eq!(snap.browse.probe_attempts, snap.browse.probe_wave_size.sum);
    assert!(snap.browse.probe_successes >= 1, "{snap:?}");
    // No durable layer in this workload.
    assert_eq!(snap.wal, Default::default());
}

/// A fixed retraction workload: the `closure.retract.*` family counts
/// exactly the waves the delete-and-rederive protocol runs — support
/// decrements, over-deleted facts, rederivations — and the latency
/// histogram records one observation per retraction.
#[test]
fn retraction_counters_are_exactly_predicted() {
    let mut db = Database::new();
    // A≺B≺C≺D chain: closure adds A≺C, A≺D, B≺D (3 derived facts).
    db.add("A", "gen", "B");
    db.add("B", "gen", "C");
    db.add("C", "gen", "D");
    let shared = Arc::new(SharedDatabase::new(db).unwrap());

    let g = shared.snapshot();
    let a = g.lookup_symbol("A").unwrap();
    let b = g.lookup_symbol("B").unwrap();
    let gen = g.lookup_symbol("gen").unwrap();

    // Removing A≺B condemns the fact itself plus its consequences A≺C
    // and A≺D; nothing is rederivable from what remains.
    assert!(shared.remove(&loosedb::Fact::new(a, gen, b)).unwrap());
    let snap = shared.metrics_snapshot();
    assert_eq!(snap.closure.retracts, 1);
    assert_eq!(snap.closure.retract_ns.count, 1);
    assert_eq!(snap.closure.retract_deleted, 3, "A≺B, A≺C and A≺D fall");
    assert_eq!(snap.closure.retract_rederived, 0);
    // One support withdrawal per condemned fact: the base seed, then one
    // consequence decrement each for A≺C and A≺D.
    assert_eq!(snap.closure.retract_decrements, 3, "{snap:?}");

    // A second retraction accumulates into the same counters.
    assert!(shared.remove(&loosedb::Fact::new(b, gen, g.lookup_symbol("C").unwrap())).unwrap());
    let snap = shared.metrics_snapshot();
    assert_eq!(snap.closure.retracts, 2);
    assert_eq!(snap.closure.retract_ns.count, 2);
    assert_eq!(snap.closure.retract_deleted, 5, "B≺C and B≺D fall too");

    // The Prometheus exposition reads the same registry.
    let text = loosedb::obs::prometheus_text(shared.metrics().registry());
    assert!(
        text.contains(&format!("loosedb_engine_closure_retracts {}", snap.closure.retracts)),
        "{text}"
    );
    assert!(
        text.contains(&format!(
            "loosedb_engine_closure_retract_over_deleted {}",
            snap.closure.retract_deleted
        )),
        "{text}"
    );
    assert!(
        text.contains(&format!(
            "loosedb_engine_closure_retract_support_decrements {}",
            snap.closure.retract_decrements
        )),
        "{text}"
    );
    assert!(text.contains("# TYPE loosedb_engine_closure_retract_nanos histogram"), "{text}");
}

/// The registry's `query.count_probes` counter absorbs the per-view
/// `FactView::count_probes` atomic: after a planned evaluation both agree
/// exactly, and the NestedLoop oracle (which never plans) issues none.
#[test]
fn planning_probe_counter_matches_per_view_oracle() {
    let mut db = Database::new();
    db.add("JOHN", "LIKES", "FELIX");
    db.add("JOHN", "WORKS-FOR", "SHIPPING");
    db.add("SHIPPING", "isa", "DEPARTMENT");
    let src = "Q(?x) := exists ?d . (?x, WORKS-FOR, ?d) & (?d, isa, DEPARTMENT)";
    let query = loosedb::parse(src, db.store_interner_mut()).unwrap();

    let view = db.view().unwrap();
    eval_with(&query, &view, EvalOptions::default()).unwrap();
    let per_view = view.count_probes();
    assert!(per_view > 0, "greedy planning must issue count probes");
    assert_eq!(db.metrics().snapshot().query.count_probes, per_view);

    // The nested-loop oracle issues its own (fewer) probes; the registry
    // mirrors whatever each view observed, so the totals stay in sync.
    let before = db.metrics().snapshot().query.count_probes;
    let view = db.view().unwrap();
    let opts = EvalOptions {
        ordering: loosedb::AtomOrdering::Syntactic,
        strategy: ExecStrategy::NestedLoop,
        ..Default::default()
    };
    eval_with(&query, &view, opts).unwrap();
    let oracle_probes = view.count_probes();
    assert_eq!(db.metrics().snapshot().query.count_probes, before + oracle_probes);
}

/// The adaptive-planner counters are exactly predicted: one strategy
/// increment per executed conjunction group, one partition increment per
/// partition fanned out, and the Prometheus exposition reads the same
/// registry.
#[test]
fn strategy_and_partition_counters_are_exactly_predicted() {
    let mut db = Database::new();
    db.add("A", "R", "B");
    db.add("B", "S", "C");
    let shared = Arc::new(SharedDatabase::new(db).unwrap());
    let mut s = SharedSession::new(Arc::clone(&shared));

    // Forced hash executor, forced two-way partitioning: the two-atom
    // conjunction is one group; its first join step is keyless (runs
    // sequentially), the second is keyed on ?y and fans out to exactly
    // two partitions.
    s.probe_opts.eval.strategy = ExecStrategy::HashJoin;
    s.probe_opts.eval.parallel = ParallelMode::Force(2);
    assert_eq!(s.query("Q(?x, ?z) := exists ?y . (?x, R, ?y) & (?y, S, ?z)").unwrap().len(), 1);
    let snap = shared.metrics_snapshot();
    assert_eq!(snap.query.strategy_hash, 1);
    assert_eq!(snap.query.strategy_nested, 0);
    assert_eq!(snap.query.join_partitions, 2);

    // Forced nested executor: one nested group, no partitions — the
    // binding-at-a-time path never fans out.
    s.probe_opts.eval.strategy = ExecStrategy::NestedLoop;
    assert_eq!(s.query("Q(?x) := exists ?y . (?x, R, ?y) & (?y, S, C)").unwrap().len(), 1);
    let snap = shared.metrics_snapshot();
    assert_eq!(snap.query.strategy_hash, 1);
    assert_eq!(snap.query.strategy_nested, 1);
    assert_eq!(snap.query.join_partitions, 2);

    // A cache hit re-serves the answer without executing: counters hold.
    s.probe_opts.eval.strategy = ExecStrategy::HashJoin;
    s.query("Q(?x, ?z) := exists ?y . (?x, R, ?y) & (?y, S, ?z)").unwrap();
    let snap = shared.metrics_snapshot();
    assert_eq!(snap.query.strategy_hash + snap.query.strategy_nested, 2);

    // The Prometheus exposition reads the same registry.
    let text = loosedb::obs::prometheus_text(shared.metrics().registry());
    assert!(
        text.contains(&format!("loosedb_query_plan_strategy_hash {}", snap.query.strategy_hash)),
        "{text}"
    );
    assert!(
        text.contains(&format!(
            "loosedb_query_plan_strategy_nested {}",
            snap.query.strategy_nested
        )),
        "{text}"
    );
    assert!(
        text.contains(&format!("loosedb_query_join_partitions {}", snap.query.join_partitions)),
        "{text}"
    );
}

/// 8 reader threads browsing concurrently with 1 publishing writer: no
/// increment is ever lost — the final counters are exactly the sum of all
/// operations issued.
#[test]
fn concurrent_readers_and_writer_lose_no_increments() {
    const READERS: usize = 8;
    const NAVS_PER_READER: u64 = 200;
    const WRITES: u64 = 50;

    let mut db = Database::new();
    db.add("JOHN", "isa", "EMPLOYEE");
    db.add("JOHN", "LIKES", "FELIX");
    let shared = Arc::new(SharedDatabase::new(db).unwrap());

    std::thread::scope(|scope| {
        for _ in 0..READERS {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                let mut s = SharedSession::new(shared);
                for _ in 0..NAVS_PER_READER {
                    s.focus("JOHN").unwrap();
                }
            });
        }
        let writer = Arc::clone(&shared);
        scope.spawn(move || {
            for i in 0..WRITES {
                writer.insert(format!("E{i}"), "isa", "EMPLOYEE").unwrap();
            }
        });
    });

    let snap = shared.metrics_snapshot();
    assert_eq!(snap.browse.nav_builds, READERS as u64 * NAVS_PER_READER);
    assert_eq!(snap.browse.nav_build_ns.count, READERS as u64 * NAVS_PER_READER);
    assert_eq!(snap.publish.publishes, WRITES);
    assert_eq!(snap.publish.epoch, 1 + WRITES);
    assert_eq!(snap.closure.extends, WRITES);
}

/// The Prometheus exposition reflects the same registry the typed
/// snapshot reads: a counter asserted through one surface shows up
/// identically in the other.
#[test]
fn prometheus_export_agrees_with_snapshot() {
    let mut db = Database::new();
    db.add("JOHN", "LIKES", "FELIX");
    let shared = Arc::new(SharedDatabase::new(db).unwrap());
    let mut s = SharedSession::new(Arc::clone(&shared));
    s.query("(JOHN, LIKES, ?x)").unwrap();

    let snap = shared.metrics_snapshot();
    let text = loosedb::obs::prometheus_text(shared.metrics().registry());
    assert!(
        text.contains(&format!("loosedb_query_evals {}", snap.query.evals)),
        "snapshot and exposition disagree:\n{text}"
    );
    assert!(text.contains("# TYPE loosedb_query_eval_nanos histogram"), "{text}");
    assert!(text.contains(&format!("loosedb_engine_epoch {}", snap.publish.epoch)), "{text}");
}
